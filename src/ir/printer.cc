#include "ir/printer.hh"

#include <sstream>

#include "ir/module.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace hippo::ir
{

namespace
{

std::string
operandRef(const Value *v)
{
    return v->displayName();
}

std::string
operandList(const Instruction &instr, size_t from = 0)
{
    std::string out;
    for (size_t i = from; i < instr.numOperands(); i++) {
        if (i != from)
            out += ", ";
        out += operandRef(instr.operand(i));
    }
    return out;
}

} // namespace

std::string
instructionToString(const Instruction &instr)
{
    std::string s;
    if (instr.hasResult())
        s = instr.displayName() + " = ";

    switch (instr.op()) {
      case Opcode::Alloca:
        s += format("alloca %llu",
                    (unsigned long long)instr.accessSize());
        break;
      case Opcode::Load:
        s += format("load %s, %llu",
                    operandRef(instr.operand(0)).c_str(),
                    (unsigned long long)instr.accessSize());
        break;
      case Opcode::Store:
        s += format("%s %s, %s, %llu",
                    instr.nonTemporal() ? "store.nt" : "store",
                    operandRef(instr.operand(0)).c_str(),
                    operandRef(instr.operand(1)).c_str(),
                    (unsigned long long)instr.accessSize());
        break;
      case Opcode::Flush:
        s += format("flush %s %s", flushKindName(instr.flushKind()),
                    operandRef(instr.operand(0)).c_str());
        break;
      case Opcode::Fence:
        s += format("fence %s", fenceKindName(instr.fenceKind()));
        break;
      case Opcode::Gep:
        s += "gep " + operandList(instr);
        break;
      case Opcode::Bin:
        s += std::string(binOpName(instr.binOp())) + " " +
             operandList(instr);
        break;
      case Opcode::Cmp:
        s += std::string("cmp ") + cmpPredName(instr.cmpPred()) + " " +
             operandList(instr);
        break;
      case Opcode::Select:
        s += "select " + operandList(instr);
        break;
      case Opcode::Br:
        s += "br %" + instr.target(0)->name();
        break;
      case Opcode::CondBr:
        s += format("condbr %s, %%%s, %%%s",
                    operandRef(instr.operand(0)).c_str(),
                    instr.target(0)->name().c_str(),
                    instr.target(1)->name().c_str());
        break;
      case Opcode::Call:
        s += "call @" + instr.callee()->name() + "(" +
             operandList(instr) + ")";
        break;
      case Opcode::Ret:
        s += instr.numOperands() ? "ret " + operandList(instr) : "ret";
        break;
      case Opcode::PmMap:
        s += format("pmmap \"%s\", %llu", instr.symbol().c_str(),
                    (unsigned long long)instr.regionSize());
        break;
      case Opcode::Memcpy:
        s += "memcpy " + operandList(instr);
        break;
      case Opcode::Memset:
        s += "memset " + operandList(instr);
        break;
      case Opcode::DurPoint:
        s += format("durpoint \"%s\"", instr.symbol().c_str());
        break;
      case Opcode::Print:
        s += format("print \"%s\", %s", instr.symbol().c_str(),
                    operandRef(instr.operand(0)).c_str());
        break;
      case Opcode::ThreadSpawn:
        s += "thread_spawn @" + instr.callee()->name() + "(" +
             operandList(instr) + ")";
        break;
      case Opcode::ThreadJoin:
        s += "thread_join " + operandList(instr);
        break;
      case Opcode::AtomicLoad:
        s += format("atomic_load %s %s, %llu",
                    memOrderName(instr.memOrder()),
                    operandRef(instr.operand(0)).c_str(),
                    (unsigned long long)instr.accessSize());
        break;
      case Opcode::AtomicStore:
        s += format("atomic_store %s %s, %s, %llu",
                    memOrderName(instr.memOrder()),
                    operandRef(instr.operand(0)).c_str(),
                    operandRef(instr.operand(1)).c_str(),
                    (unsigned long long)instr.accessSize());
        break;
      case Opcode::AtomicRmw:
        s += format("atomic_rmw %s %s %s, %s, %llu",
                    binOpName(instr.binOp()),
                    memOrderName(instr.memOrder()),
                    operandRef(instr.operand(0)).c_str(),
                    operandRef(instr.operand(1)).c_str(),
                    (unsigned long long)instr.accessSize());
        break;
    }

    if (!instr.hasResult())
        s += format(" !id(%u)", instr.id());
    if (instr.loc().valid())
        s += format(" !loc(%s:%d)", instr.loc().file.c_str(),
                    instr.loc().line);
    return s;
}

void
printFunction(const Function &f, std::ostream &os)
{
    os << "func @" << f.name() << "(";
    for (size_t i = 0; i < f.numParams(); i++) {
        if (i)
            os << ", ";
        os << "%" << f.param(i)->name() << ": "
           << typeName(f.param(i)->type());
    }
    os << ") -> " << typeName(f.returnType()) << " {\n";
    for (const auto &bb : f.blocks()) {
        os << bb->name() << ":\n";
        for (const auto &instr : *bb)
            os << "    " << instructionToString(*instr) << "\n";
    }
    os << "}\n";
}

void
printModule(const Module &m, std::ostream &os)
{
    os << "module \"" << m.name() << "\"\n\n";
    for (const auto &f : m.functions()) {
        printFunction(*f, os);
        os << "\n";
    }
}

std::string
moduleToString(const Module &m)
{
    std::ostringstream os;
    printModule(m, os);
    return os.str();
}

} // namespace hippo::ir
