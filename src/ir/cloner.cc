#include "ir/cloner.hh"

#include "ir/module.hh"
#include "support/logging.hh"

namespace hippo::ir
{

CloneResult
cloneFunction(Function *src, const std::string &new_name,
              const std::function<Function *(Function *)> &remap_callee)
{
    Module *m = src->parent();
    hippo_assert(!m->findFunction(new_name),
                 "clone target name already exists");

    CloneResult res;
    Function *dst = m->addFunction(new_name, src->returnType());
    res.clone = dst;

    for (const auto &p : src->params()) {
        Argument *np = dst->addParam(p->type(), p->name());
        res.valueMap[p.get()] = np;
    }

    // First create all blocks so branches can resolve forward.
    std::map<const BasicBlock *, BasicBlock *> block_map;
    for (const auto &bb : src->blocks())
        block_map[bb.get()] = dst->addBlock(bb->name());

    for (const auto &bb : src->blocks()) {
        BasicBlock *nb = block_map[bb.get()];
        for (const auto &instr : *bb) {
            auto copy = std::make_unique<Instruction>(
                instr->op(), instr->type(), instr->id());
            Instruction *ni = copy.get();
            nb->append(std::move(copy));

            ni->setAccessSize(instr->accessSize());
            switch (instr->op()) {
              case Opcode::Bin:
              case Opcode::AtomicRmw:
                ni->setBinOp(instr->binOp());
                break;
              case Opcode::Cmp:
                ni->setCmpPred(instr->cmpPred());
                break;
              case Opcode::Flush:
                ni->setFlushKind(instr->flushKind());
                break;
              case Opcode::Fence:
                ni->setFenceKind(instr->fenceKind());
                break;
              default:
                break;
            }
            ni->setMemOrder(instr->memOrder());
            ni->setNonTemporal(instr->nonTemporal());
            ni->setSymbol(instr->symbol());
            ni->setLoc(instr->loc());

            for (Value *op : instr->operands()) {
                auto it = res.valueMap.find(op);
                ni->addOperand(it == res.valueMap.end() ? op
                                                        : it->second);
            }
            for (unsigned t = 0; t < 2; t++) {
                if (instr->target(t))
                    ni->setTarget(t, block_map[instr->target(t)]);
            }
            if (instr->callee()) {
                Function *callee = instr->callee();
                if (remap_callee) {
                    if (Function *alt = remap_callee(callee))
                        callee = alt;
                }
                ni->setCallee(callee);
            }

            res.valueMap[instr.get()] = ni;
            res.instrMap[instr.get()] = ni;
        }
    }

    dst->reserveIds(src->idBound());
    return res;
}

} // namespace hippo::ir
