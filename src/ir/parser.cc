#include "ir/parser.hh"

#include <map>
#include <optional>
#include <vector>

#include "ir/module.hh"
#include "support/strings.hh"

namespace hippo::ir
{

namespace
{

/** One unresolved operand reference: a token plus its use site. */
struct PendingOperand
{
    Instruction *instr;
    std::string token;
};

/** One unresolved branch target. */
struct PendingTarget
{
    Instruction *instr;
    unsigned slot;
    std::string label;
};

struct PendingCallee
{
    Instruction *instr;
    std::string name;
};

/**
 * Recursive-descent-ish line parser. The grammar is line oriented:
 * every instruction occupies one line, so parsing is a matter of
 * tokenizing each line and dispatching on the mnemonic.
 */
class ParserImpl
{
  public:
    explicit ParserImpl(std::string_view text) : text_(text) {}

    std::unique_ptr<Module>
    run(std::string *error)
    {
        module_ = std::make_unique<Module>();
        try {
            parseTop();
            resolveAll();
        } catch (const std::string &msg) {
            if (error)
                *error = msg;
            return nullptr;
        }
        return std::move(module_);
    }

  private:
    /** Cap on explicit instruction/register ids. Register files are
     *  sized by the largest id seen, so an unchecked 32-bit id in a
     *  hostile module would make every call frame allocate gigabytes;
     *  a million ids per function is far beyond any legitimate
     *  module. */
    static constexpr uint64_t maxInstrId = 1u << 20;

    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw format("line %d: %s", lineNo_, msg.c_str());
    }

    /** Next non-empty, comment-stripped line; false at EOF. */
    bool
    nextLine(std::string &out)
    {
        while (pos_ < text_.size()) {
            size_t eol = text_.find('\n', pos_);
            if (eol == std::string_view::npos)
                eol = text_.size();
            std::string_view raw = text_.substr(pos_, eol - pos_);
            pos_ = eol + 1;
            lineNo_++;
            size_t comment = raw.find(';');
            if (comment != std::string_view::npos)
                raw = raw.substr(0, comment);
            std::string_view t = trim(raw);
            if (!t.empty()) {
                out = std::string(t);
                return true;
            }
        }
        return false;
    }

    void
    parseTop()
    {
        std::string line;
        while (nextLine(line)) {
            if (startsWith(line, "module")) {
                size_t a = line.find('"');
                size_t b = line.rfind('"');
                if (a == std::string::npos || b <= a)
                    fail("malformed module line");
                if (!module_->functions().empty())
                    fail("'module' must precede all functions");
                *module_ = Module(line.substr(a + 1, b - a - 1));
            } else if (startsWith(line, "func")) {
                parseFunctionHeader(line);
            } else {
                fail("expected 'module' or 'func', got: " + line);
            }
        }
    }

    void
    parseFunctionHeader(const std::string &line)
    {
        // func @name(%p: ptr, %n: i64) -> void {
        size_t at = line.find('@');
        size_t lp = line.find('(', at);
        if (at == std::string::npos || lp == std::string::npos)
            fail("malformed func header");
        std::string name = line.substr(at + 1, lp - at - 1);
        size_t rp = line.find(')', lp);
        if (rp == std::string::npos)
            fail("missing ')'");
        std::string params = line.substr(lp + 1, rp - lp - 1);
        size_t arrow = line.find("->", rp);
        if (arrow == std::string::npos)
            fail("missing return type");
        std::string rett(trim(line.substr(arrow + 2)));
        if (endsWith(rett, "{"))
            rett = std::string(trim(
                std::string_view(rett).substr(0, rett.size() - 1)));

        Type ret = parseType(rett);
        Function *f = module_->addFunction(name, ret);
        values_.clear();

        if (!trim(params).empty()) {
            for (auto &p : split(params, ',')) {
                auto parts = split(std::string(trim(p)), ':');
                if (parts.size() != 2)
                    fail("malformed parameter: " + p);
                std::string pname(trim(parts[0]));
                if (!startsWith(pname, "%"))
                    fail("parameter name must start with %");
                pname = pname.substr(1);
                Type pt = parseType(std::string(trim(parts[1])));
                Argument *arg = f->addParam(pt, pname);
                values_["%" + pname] = arg;
            }
        }
        parseBody(f);
    }

    Type
    parseType(const std::string &t)
    {
        if (t == "void")
            return Type::Void;
        if (t == "i64")
            return Type::Int;
        if (t == "ptr")
            return Type::Ptr;
        fail("unknown type: " + t);
    }

    void
    parseBody(Function *f)
    {
        std::string line;
        BasicBlock *bb = nullptr;
        uint32_t max_id = 0;
        while (nextLine(line)) {
            if (line == "}") {
                f->reserveIds(max_id);
                resolveFunction(f);
                return;
            }
            if (endsWith(line, ":")) {
                std::string label = line.substr(0, line.size() - 1);
                bb = f->findBlock(label);
                if (!bb)
                    bb = f->addBlock(label);
                continue;
            }
            if (!bb)
                fail("instruction outside of a block");
            Instruction *instr = parseInstruction(f, bb, line);
            if (instr->id() + 1 > max_id)
                max_id = instr->id() + 1;
        }
        fail("unexpected EOF inside function @" + f->name());
    }

    /** Strip and capture `!id(..)` and `!loc(..)` suffixes. */
    std::string
    stripMetadata(std::string line, std::optional<uint32_t> &id,
                  SourceLoc &loc)
    {
        while (true) {
            size_t bang = line.rfind('!');
            if (bang == std::string::npos)
                break;
            size_t lp = line.find('(', bang);
            size_t rp = line.find(')', bang);
            if (lp == std::string::npos || rp == std::string::npos)
                break;
            std::string kind = line.substr(bang + 1, lp - bang - 1);
            std::string body = line.substr(lp + 1, rp - lp - 1);
            if (kind == "id") {
                uint64_t v;
                if (!parseUint(body, v))
                    fail("bad !id");
                if (v >= maxInstrId)
                    fail("oversized !id: " + body);
                id = (uint32_t)v;
            } else if (kind == "loc") {
                size_t colon = body.rfind(':');
                if (colon == std::string::npos)
                    fail("bad !loc");
                loc.file = body.substr(0, colon);
                int64_t ln;
                if (!parseInt(body.substr(colon + 1), ln))
                    fail("bad !loc line");
                loc.line = (int)ln;
            } else {
                fail("unknown metadata: !" + kind);
            }
            line = std::string(trim(line.substr(0, bang)));
        }
        return line;
    }

    Instruction *
    parseInstruction(Function *f, BasicBlock *bb, std::string line)
    {
        std::optional<uint32_t> explicit_id;
        SourceLoc loc;
        line = stripMetadata(std::move(line), explicit_id, loc);

        std::string result_name;
        size_t eq = line.find('=');
        if (startsWith(line, "%") && eq != std::string::npos) {
            result_name = std::string(trim(line.substr(0, eq)));
            line = std::string(trim(line.substr(eq + 1)));
            if (startsWith(result_name, "%v")) {
                uint64_t v;
                if (parseUint(result_name.substr(2), v)) {
                    if (v >= maxInstrId)
                        fail("oversized register id: " + result_name);
                    explicit_id = (uint32_t)v;
                }
            }
        }

        auto words = splitWhitespace(line);
        if (words.empty())
            fail("empty instruction");
        const std::string &mn = words[0];

        // Everything after the mnemonic (and sub-mnemonic), as a
        // comma-separated operand list.
        auto operandsAfter = [&](size_t nwords) {
            size_t consumed = 0, idx = 0;
            while (idx < line.size() && consumed < nwords) {
                while (idx < line.size() && !std::isspace(
                        (unsigned char)line[idx]))
                    idx++;
                while (idx < line.size() && std::isspace(
                        (unsigned char)line[idx]))
                    idx++;
                consumed++;
            }
            std::vector<std::string> toks;
            std::string rest = line.substr(idx);
            if (trim(rest).empty())
                return toks;
            for (auto &t : split(rest, ','))
                toks.emplace_back(trim(t));
            return toks;
        };

        // Reserve explicit ids immediately so instructions without
        // one (void instructions lacking !id) cannot collide.
        uint32_t id;
        if (explicit_id) {
            id = *explicit_id;
            f->reserveIds(id + 1);
        } else {
            id = f->nextInstrId();
        }
        Opcode op;
        Type rt = Type::Void;
        uint64_t imm = 0;
        uint8_t sub = 0;
        MemOrder ord = MemOrder::Relaxed;
        bool has_ord = false;
        bool nt = false;
        std::string symbol;
        std::vector<std::string> opnd_tokens;
        std::vector<std::string> target_labels;
        std::string callee_name;

        auto parseQuoted = [&](const std::string &rest) {
            size_t a = rest.find('"');
            size_t b = rest.find('"', a + 1);
            if (a == std::string::npos || b == std::string::npos)
                fail("expected quoted symbol");
            return std::make_pair(rest.substr(a + 1, b - a - 1),
                                  rest.substr(b + 1));
        };

        if (mn == "alloca") {
            op = Opcode::Alloca;
            rt = Type::Ptr;
            auto toks = operandsAfter(1);
            if (toks.size() != 1 || !parseUint(toks[0], imm))
                fail("alloca wants a byte count");
        } else if (mn == "load") {
            op = Opcode::Load;
            rt = Type::Int;
            auto toks = operandsAfter(1);
            if (toks.size() != 2 || !parseUint(toks[1], imm))
                fail("load wants ptr, size");
            opnd_tokens = {toks[0]};
        } else if (mn == "store" || mn == "store.nt") {
            op = Opcode::Store;
            nt = mn == "store.nt";
            auto toks = operandsAfter(1);
            if (toks.size() != 3 || !parseUint(toks[2], imm))
                fail("store wants value, ptr, size");
            opnd_tokens = {toks[0], toks[1]};
        } else if (mn == "flush") {
            op = Opcode::Flush;
            if (words.size() < 3)
                fail("flush wants kind and ptr");
            if (words[1] == "clwb")
                sub = (uint8_t)FlushKind::Clwb;
            else if (words[1] == "clflushopt")
                sub = (uint8_t)FlushKind::ClflushOpt;
            else if (words[1] == "clflush")
                sub = (uint8_t)FlushKind::Clflush;
            else
                fail("unknown flush kind: " + words[1]);
            opnd_tokens = operandsAfter(2);
            if (opnd_tokens.size() != 1)
                fail("flush wants one pointer");
        } else if (mn == "fence") {
            op = Opcode::Fence;
            if (words.size() < 2)
                fail("fence wants a kind");
            if (words[1] == "sfence")
                sub = (uint8_t)FenceKind::Sfence;
            else if (words[1] == "mfence")
                sub = (uint8_t)FenceKind::Mfence;
            else
                fail("unknown fence kind: " + words[1]);
        } else if (mn == "gep") {
            op = Opcode::Gep;
            rt = Type::Ptr;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() != 2)
                fail("gep wants ptr, offset");
        } else if (mn == "cmp") {
            op = Opcode::Cmp;
            rt = Type::Int;
            if (words.size() < 2)
                fail("cmp wants a predicate");
            static const std::map<std::string, CmpPred> preds = {
                {"eq", CmpPred::Eq},   {"ne", CmpPred::Ne},
                {"ult", CmpPred::Ult}, {"ule", CmpPred::Ule},
                {"ugt", CmpPred::Ugt}, {"uge", CmpPred::Uge},
                {"slt", CmpPred::Slt}, {"sle", CmpPred::Sle},
                {"sgt", CmpPred::Sgt}, {"sge", CmpPred::Sge},
            };
            auto it = preds.find(words[1]);
            if (it == preds.end())
                fail("unknown predicate: " + words[1]);
            sub = (uint8_t)it->second;
            opnd_tokens = operandsAfter(2);
            if (opnd_tokens.size() != 2)
                fail("cmp wants two operands");
        } else if (mn == "select") {
            op = Opcode::Select;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() != 3)
                fail("select wants three operands");
            rt = Type::Int; // fixed up at resolution for ptr selects
        } else if (mn == "br") {
            op = Opcode::Br;
            if (words.size() != 2 || !startsWith(words[1], "%"))
                fail("br wants a %label");
            target_labels = {words[1].substr(1)};
        } else if (mn == "condbr") {
            op = Opcode::CondBr;
            auto toks = operandsAfter(1);
            if (toks.size() != 3)
                fail("condbr wants cond, %t, %f");
            opnd_tokens = {toks[0]};
            if (!startsWith(toks[1], "%") || !startsWith(toks[2], "%"))
                fail("condbr targets must be %labels");
            target_labels = {toks[1].substr(1), toks[2].substr(1)};
        } else if (mn == "call") {
            op = Opcode::Call;
            size_t at = line.find('@');
            size_t lp = line.find('(', at);
            size_t rp = line.rfind(')');
            if (at == std::string::npos || lp == std::string::npos ||
                rp == std::string::npos)
                fail("malformed call");
            callee_name = line.substr(at + 1, lp - at - 1);
            std::string args = line.substr(lp + 1, rp - lp - 1);
            if (!trim(args).empty()) {
                for (auto &t : split(args, ','))
                    opnd_tokens.emplace_back(trim(t));
            }
        } else if (mn == "ret") {
            op = Opcode::Ret;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() > 1)
                fail("ret wants at most one operand");
        } else if (mn == "pmmap") {
            op = Opcode::PmMap;
            rt = Type::Ptr;
            auto [sym, rest] = parseQuoted(line);
            symbol = sym;
            auto toks = split(rest, ',');
            std::string szt =
                toks.size() >= 2 ? std::string(trim(toks[1])) : "";
            if (!parseUint(szt, imm))
                fail("pmmap wants \"region\", size");
        } else if (mn == "memcpy" || mn == "memset") {
            op = mn == "memcpy" ? Opcode::Memcpy : Opcode::Memset;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() != 3)
                fail(mn + " wants three operands");
        } else if (mn == "thread_spawn") {
            // thread_spawn @worker(args...) — call syntax; the
            // result is the spawned thread's id, always i64.
            op = Opcode::ThreadSpawn;
            rt = Type::Int;
            size_t at = line.find('@');
            size_t lp = line.find('(', at);
            size_t rp = line.rfind(')');
            if (at == std::string::npos || lp == std::string::npos ||
                rp == std::string::npos)
                fail("malformed thread_spawn");
            callee_name = line.substr(at + 1, lp - at - 1);
            std::string args = line.substr(lp + 1, rp - lp - 1);
            if (!trim(args).empty()) {
                for (auto &t : split(args, ','))
                    opnd_tokens.emplace_back(trim(t));
            }
        } else if (mn == "thread_join") {
            op = Opcode::ThreadJoin;
            rt = Type::Int;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() != 1)
                fail("thread_join wants one thread id");
        } else if (mn == "atomic_load") {
            op = Opcode::AtomicLoad;
            rt = Type::Int;
            if (words.size() < 2 || !parseMemOrder(words[1], ord))
                fail("atomic_load wants an ordering "
                     "(relaxed|acquire|release|acq_rel|seq_cst)");
            has_ord = true;
            auto toks = operandsAfter(2);
            if (toks.size() != 2 || !parseUint(toks[1], imm))
                fail("atomic_load wants ptr, size");
            opnd_tokens = {toks[0]};
        } else if (mn == "atomic_store") {
            op = Opcode::AtomicStore;
            if (words.size() < 2 || !parseMemOrder(words[1], ord))
                fail("atomic_store wants an ordering "
                     "(relaxed|acquire|release|acq_rel|seq_cst)");
            has_ord = true;
            auto toks = operandsAfter(2);
            if (toks.size() != 3 || !parseUint(toks[2], imm))
                fail("atomic_store wants value, ptr, size");
            opnd_tokens = {toks[0], toks[1]};
        } else if (mn == "atomic_rmw") {
            // atomic_rmw <binop> <ordering> ptr, value, size
            op = Opcode::AtomicRmw;
            rt = Type::Int;
            static const std::map<std::string, BinOp> rmw_ops = {
                {"add", BinOp::Add}, {"sub", BinOp::Sub},
                {"and", BinOp::And}, {"or", BinOp::Or},
                {"xor", BinOp::Xor},
            };
            if (words.size() < 2)
                fail("atomic_rmw wants an operator");
            auto rit = rmw_ops.find(words[1]);
            if (rit == rmw_ops.end())
                fail("unknown atomic_rmw operator: " + words[1]);
            sub = (uint8_t)rit->second;
            if (words.size() < 3 || !parseMemOrder(words[2], ord))
                fail("atomic_rmw wants an ordering "
                     "(relaxed|acquire|release|acq_rel|seq_cst)");
            has_ord = true;
            auto toks = operandsAfter(3);
            if (toks.size() != 3 || !parseUint(toks[2], imm))
                fail("atomic_rmw wants ptr, value, size");
            opnd_tokens = {toks[0], toks[1]};
        } else if (mn == "durpoint") {
            op = Opcode::DurPoint;
            symbol = parseQuoted(line).first;
        } else if (mn == "print") {
            op = Opcode::Print;
            auto [sym, rest] = parseQuoted(line);
            symbol = sym;
            auto toks = split(rest, ',');
            if (toks.size() < 2)
                fail("print wants \"label\", value");
            opnd_tokens = {std::string(trim(toks[1]))};
        } else {
            // Binary operators use their mnemonic directly.
            static const std::map<std::string, BinOp> bins = {
                {"add", BinOp::Add},   {"sub", BinOp::Sub},
                {"mul", BinOp::Mul},   {"udiv", BinOp::UDiv},
                {"urem", BinOp::URem}, {"and", BinOp::And},
                {"or", BinOp::Or},     {"xor", BinOp::Xor},
                {"shl", BinOp::Shl},   {"lshr", BinOp::LShr},
            };
            auto it = bins.find(mn);
            if (it == bins.end())
                fail("unknown mnemonic: " + mn);
            op = Opcode::Bin;
            rt = Type::Int;
            sub = (uint8_t)it->second;
            opnd_tokens = operandsAfter(1);
            if (opnd_tokens.size() != 2)
                fail(mn + " wants two operands");
        }

        auto owned = std::make_unique<Instruction>(op, rt, id);
        Instruction *instr = owned.get();
        instr->setAccessSize(imm);
        if (op == Opcode::Bin || op == Opcode::AtomicRmw)
            instr->setBinOp((BinOp)sub);
        else if (op == Opcode::Cmp)
            instr->setCmpPred((CmpPred)sub);
        else if (op == Opcode::Flush)
            instr->setFlushKind((FlushKind)sub);
        else if (op == Opcode::Fence)
            instr->setFenceKind((FenceKind)sub);
        if (has_ord)
            instr->setMemOrder(ord);
        instr->setNonTemporal(nt);
        instr->setSymbol(symbol);
        instr->setLoc(loc);
        bb->append(std::move(owned));

        if (!result_name.empty())
            values_[result_name] = instr;

        for (auto &tok : opnd_tokens)
            pendingOperands_.push_back({instr, tok});
        for (unsigned i = 0; i < target_labels.size(); i++)
            pendingTargets_.push_back({instr, i, target_labels[i]});
        if (!callee_name.empty())
            pendingCallees_.push_back({instr, callee_name});

        return instr;
    }

    void
    resolveFunction(Function *f)
    {
        for (auto &p : pendingOperands_) {
            p.instr->addOperand(resolveValue(p.token));
            // Selects and rets of pointers need a result-type fixup
            // now that the operand type is known.
            if (p.instr->op() == Opcode::Select &&
                p.instr->numOperands() == 2 &&
                p.instr->operand(1)->type() == Type::Ptr) {
                p.instr->setResultType(Type::Ptr);
            }
        }
        pendingOperands_.clear();
        for (auto &t : pendingTargets_) {
            BasicBlock *bb = f->findBlock(t.label);
            if (!bb)
                fail("unknown block label: " + t.label);
            t.instr->setTarget(t.slot, bb);
        }
        pendingTargets_.clear();
    }

    Value *
    resolveValue(const std::string &tok)
    {
        if (tok == "null")
            return module_->getNullPtr();
        if (startsWith(tok, "%")) {
            auto it = values_.find(tok);
            if (it == values_.end())
                fail("unknown value: " + tok);
            return it->second;
        }
        uint64_t v;
        if (parseUint(tok, v))
            return module_->getInt(v);
        fail("cannot parse operand: " + tok);
    }

    void
    resolveAll()
    {
        // Callee resolution is module wide (calls may be forward).
        for (auto &c : pendingCallees_) {
            Function *callee = module_->findFunction(c.name);
            if (!callee)
                fail("unknown callee: @" + c.name);
            c.instr->setCallee(callee);
            // A call's result type comes from its (late-bound)
            // callee. thread_spawn keeps its i64 tid result.
            if (c.instr->op() == Opcode::Call)
                c.instr->setResultType(callee->returnType());
        }
        pendingCallees_.clear();
    }

    std::string_view text_;
    size_t pos_ = 0;
    int lineNo_ = 0;
    std::unique_ptr<Module> module_;
    std::map<std::string, Value *> values_;
    std::vector<PendingOperand> pendingOperands_;
    std::vector<PendingTarget> pendingTargets_;
    std::vector<PendingCallee> pendingCallees_;
};

} // namespace

std::unique_ptr<Module>
parseModule(std::string_view text, std::string *error)
{
    return ParserImpl(text).run(error);
}

} // namespace hippo::ir
