/**
 * @file
 * Basic blocks: ordered instruction sequences ending in a terminator.
 * std::list is used so Hippocrates can insert fixes mid-block without
 * invalidating iterators or instruction pointers.
 */

#ifndef HIPPO_IR_BASIC_BLOCK_HH
#define HIPPO_IR_BASIC_BLOCK_HH

#include <list>
#include <memory>
#include <string>

#include "ir/instruction.hh"

namespace hippo::ir
{

class Function;

/** A straight-line sequence of instructions with a single terminator. */
class BasicBlock
{
  public:
    using InstrList = std::list<std::unique_ptr<Instruction>>;
    using iterator = InstrList::iterator;
    using const_iterator = InstrList::const_iterator;

    BasicBlock(std::string name, Function *parent)
        : name_(std::move(name)), parent_(parent)
    {}

    const std::string &name() const { return name_; }
    Function *parent() const { return parent_; }

    iterator begin() { return instrs_.begin(); }
    iterator end() { return instrs_.end(); }
    const_iterator begin() const { return instrs_.begin(); }
    const_iterator end() const { return instrs_.end(); }
    bool empty() const { return instrs_.empty(); }
    size_t size() const { return instrs_.size(); }

    /** Last instruction (the terminator once the block is complete). */
    Instruction *terminator() const;

    /** Append an instruction, taking ownership. */
    Instruction *append(std::unique_ptr<Instruction> instr);

    /** Insert before @p pos, taking ownership; returns the raw ptr. */
    Instruction *insert(iterator pos, std::unique_ptr<Instruction> instr);

    /** Iterator pointing at @p instr (must be in this block). */
    iterator iteratorTo(Instruction *instr);

    /** Remove and destroy @p instr (must not be referenced elsewhere). */
    void erase(Instruction *instr);

  private:
    std::string name_;
    Function *parent_;
    InstrList instrs_;
};

} // namespace hippo::ir

#endif // HIPPO_IR_BASIC_BLOCK_HH
