/**
 * @file
 * Control-flow graph views and (post-)dominator trees over PMIR
 * functions. The flush/fence optimizer (core/flush_optimizer.cc)
 * needs both directions: forward dominance to place hoisted flushes
 * and to reason about "a flush covers this one on every incoming
 * path", post-dominance for the dual "a fence is reached on every
 * outgoing path".
 *
 * The tree is built with the Cooper-Harvey-Kennedy iterative
 * algorithm over a reverse-postorder numbering — O(N^2) worst case
 * but effectively linear on the small, mostly-reducible CFGs PMIR
 * programs have, and simple enough to audit.
 */

#ifndef HIPPO_IR_DOMINATORS_HH
#define HIPPO_IR_DOMINATORS_HH

#include <cstdint>
#include <map>
#include <vector>

namespace hippo::ir
{

class BasicBlock;
class Function;

/**
 * Predecessor/successor lists for every block of one function,
 * derived from the terminators. Built once and shared by the
 * dominance computations and the optimizer's path walks. The view
 * is invalidated by any mutation that adds/removes blocks or
 * rewrites terminators (inserting/erasing non-terminator
 * instructions is fine).
 */
class Cfg
{
  public:
    explicit Cfg(Function &f);

    Function &function() const { return fn_; }

    /** All blocks in function order. */
    const std::vector<BasicBlock *> &blocks() const { return blocks_; }

    const std::vector<BasicBlock *> &preds(const BasicBlock *bb) const;
    const std::vector<BasicBlock *> &succs(const BasicBlock *bb) const;

    /** True when @p bb is reachable from the function entry. */
    bool reachableFromEntry(const BasicBlock *bb) const;

    /** Dense index of @p bb in blocks() order; ~0u when absent. */
    uint32_t indexOf(const BasicBlock *bb) const;

  private:
    Function &fn_;
    std::vector<BasicBlock *> blocks_;
    std::map<const BasicBlock *, uint32_t> index_;
    std::vector<std::vector<BasicBlock *>> preds_;
    std::vector<std::vector<BasicBlock *>> succs_;
    std::vector<bool> reachable_;
};

/**
 * Dominator or post-dominator tree over a Cfg.
 *
 * For post-dominators the CFG is traversed edge-reversed from a
 * virtual exit that every Ret block feeds; blocks that cannot reach
 * any Ret (infinite loops) have no post-idom and post-dominate
 * nothing. Symmetrically, blocks unreachable from the entry have no
 * idom and are dominated by nothing; all queries answer false for
 * them, which is the conservative direction for every optimizer use.
 */
class DominatorTree
{
  public:
    enum class Kind : uint8_t { Dominators, PostDominators };

    DominatorTree(const Cfg &cfg, Kind kind = Kind::Dominators);

    Kind kind() const { return kind_; }

    /** Immediate (post-)dominator; null for the root (the entry
     *  block / a Ret block whose post-idom is the virtual exit) and
     *  for blocks outside the tree. */
    const BasicBlock *idom(const BasicBlock *bb) const;

    /** Reflexive (post-)dominance: does @p a (post-)dominate @p b?
     *  False when either block is outside the tree. */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /** Nearest common (post-)dominator; null when either block is
     *  outside the tree. For post-dominators the virtual exit is
     *  never returned — null stands for "only the virtual exit". */
    const BasicBlock *nearestCommonDominator(const BasicBlock *a,
                                             const BasicBlock *b) const;

    /** True when @p bb participates in the tree (is reachable from
     *  the entry / can reach a Ret). */
    bool inTree(const BasicBlock *bb) const;

  private:
    static constexpr uint32_t kNone = ~0u;

    uint32_t indexOf(const BasicBlock *bb) const;

    Kind kind_;
    std::vector<const BasicBlock *> blocks_; ///< cfg order; virtual exit last
    std::map<const BasicBlock *, uint32_t> index_;
    std::vector<uint32_t> idom_;  ///< by block index; kNone = outside
    std::vector<uint32_t> depth_; ///< tree depth; root = 0
};

} // namespace hippo::ir

#endif // HIPPO_IR_DOMINATORS_HH
