/**
 * @file
 * PMIR functions: named, directly-called units with typed parameters,
 * a list of basic blocks (the first is the entry), and a monotonically
 * increasing instruction-id counter.
 */

#ifndef HIPPO_IR_FUNCTION_HH
#define HIPPO_IR_FUNCTION_HH

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/value.hh"

namespace hippo::ir
{

class Module;

/** A PMIR function definition. */
class Function
{
  public:
    using BlockList = std::list<std::unique_ptr<BasicBlock>>;

    Function(std::string name, Type return_type, Module *parent)
        : name_(std::move(name)), returnType_(return_type),
          parent_(parent)
    {}

    const std::string &name() const { return name_; }
    Type returnType() const { return returnType_; }
    Module *parent() const { return parent_; }

    /** Add a formal parameter (must precede block creation). */
    Argument *addParam(Type type, std::string name);

    const std::vector<std::unique_ptr<Argument>> &params() const
    {
        return params_;
    }
    Argument *param(size_t i) const { return params_[i].get(); }
    size_t numParams() const { return params_.size(); }

    /** Create and append a new basic block. */
    BasicBlock *addBlock(std::string name);

    BlockList &blocks() { return blocks_; }
    const BlockList &blocks() const { return blocks_; }

    /** Entry block (first block); null for an empty function. */
    BasicBlock *entry() const
    {
        return blocks_.empty() ? nullptr : blocks_.front().get();
    }

    /** Find a block by name; null when absent. */
    BasicBlock *findBlock(const std::string &name) const;

    /** Allocate the next never-reused instruction id. */
    uint32_t nextInstrId() { return nextId_++; }

    /** One past the largest id handed out so far. */
    uint32_t idBound() const { return nextId_; }

    /**
     * Ensure future ids start at or beyond @p bound; used by the
     * parser, which materializes instructions with explicit ids.
     */
    void reserveIds(uint32_t bound)
    {
        if (bound > nextId_)
            nextId_ = bound;
    }

    /** Find an instruction by id (linear scan); null when absent. */
    Instruction *findInstr(uint32_t id) const;

    /** Total instruction count across all blocks. */
    size_t instrCount() const;

  private:
    std::string name_;
    Type returnType_;
    Module *parent_;
    std::vector<std::unique_ptr<Argument>> params_;
    BlockList blocks_;
    uint32_t nextId_ = 0;
};

} // namespace hippo::ir

#endif // HIPPO_IR_FUNCTION_HH
