#include "ir/verifier.hh"

#include <set>

#include "ir/module.hh"
#include "ir/printer.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace hippo::ir
{

namespace
{

/** Per-function verification context. */
class FunctionVerifier
{
  public:
    explicit FunctionVerifier(const Function &f) : f_(f) {}

    std::vector<std::string>
    run()
    {
        collectLocals();
        if (f_.blocks().empty()) {
            problem("function has no blocks");
            return problems_;
        }
        for (const auto &bb : f_.blocks())
            checkBlock(*bb);
        return problems_;
    }

  private:
    void
    problem(const std::string &msg)
    {
        problems_.push_back(
            format("@%s: %s", f_.name().c_str(), msg.c_str()));
    }

    void
    problemAt(const Instruction &instr, const std::string &msg)
    {
        problem(format("%s: %s",
                       instructionToString(instr).c_str(),
                       msg.c_str()));
    }

    void
    collectLocals()
    {
        for (const auto &p : f_.params())
            locals_.insert(p.get());
        std::set<uint32_t> ids;
        for (const auto &bb : f_.blocks()) {
            blocks_.insert(bb.get());
            for (const auto &instr : *bb) {
                locals_.insert(instr.get());
                if (!ids.insert(instr->id()).second) {
                    problem(format("duplicate instruction id %u",
                                   instr->id()));
                }
                if (instr->id() >= f_.idBound())
                    problem(format("id %u beyond idBound %u",
                                   instr->id(), f_.idBound()));
            }
        }
    }

    void
    checkOperandCount(const Instruction &instr, size_t want)
    {
        if (instr.numOperands() != want) {
            problemAt(instr, format("expected %zu operands, has %zu",
                                    want, instr.numOperands()));
        }
    }

    void
    checkType(const Instruction &instr, size_t idx, Type want)
    {
        if (idx >= instr.numOperands())
            return;
        if (instr.operand(idx)->type() != want) {
            problemAt(instr,
                      format("operand %zu should be %s", idx,
                             typeName(want)));
        }
    }

    void
    checkLocalOperands(const Instruction &instr)
    {
        for (size_t i = 0; i < instr.numOperands(); i++) {
            const Value *v = instr.operand(i);
            if (!v) {
                problemAt(instr, format("null operand %zu", i));
                continue;
            }
            if (v->kind() != ValueKind::Constant && !locals_.count(v))
                problemAt(instr,
                          format("operand %zu from another function",
                                 i));
        }
    }

    void
    checkBlock(const BasicBlock &bb)
    {
        if (bb.empty()) {
            problem(format("block %s is empty", bb.name().c_str()));
            return;
        }
        size_t idx = 0;
        for (const auto &owned : bb) {
            const Instruction &instr = *owned;
            bool last = ++idx == bb.size();
            if (instr.isTerminator() != last) {
                problemAt(instr,
                          last ? "block does not end in a terminator"
                               : "terminator in the middle of a block");
            }
            checkInstr(instr);
        }
    }

    void
    checkInstr(const Instruction &instr)
    {
        checkLocalOperands(instr);
        switch (instr.op()) {
          case Opcode::Alloca:
            checkOperandCount(instr, 0);
            if (instr.accessSize() == 0)
                problemAt(instr, "zero-sized alloca");
            break;
          case Opcode::Load:
            checkOperandCount(instr, 1);
            checkType(instr, 0, Type::Ptr);
            checkAccessSize(instr);
            break;
          case Opcode::Store:
            checkOperandCount(instr, 2);
            checkType(instr, 1, Type::Ptr);
            checkAccessSize(instr);
            break;
          case Opcode::Flush:
            checkOperandCount(instr, 1);
            checkType(instr, 0, Type::Ptr);
            break;
          case Opcode::Fence:
            checkOperandCount(instr, 0);
            break;
          case Opcode::Gep:
            checkOperandCount(instr, 2);
            checkType(instr, 0, Type::Ptr);
            checkType(instr, 1, Type::Int);
            break;
          case Opcode::Bin:
            checkOperandCount(instr, 2);
            checkType(instr, 0, Type::Int);
            checkType(instr, 1, Type::Int);
            break;
          case Opcode::Cmp:
            checkOperandCount(instr, 2);
            break;
          case Opcode::Select:
            checkOperandCount(instr, 3);
            checkType(instr, 0, Type::Int);
            if (instr.numOperands() == 3 &&
                instr.operand(1)->type() != instr.operand(2)->type())
                problemAt(instr, "select arm types differ");
            break;
          case Opcode::Br:
            checkOperandCount(instr, 0);
            checkTarget(instr, 0);
            break;
          case Opcode::CondBr:
            checkOperandCount(instr, 1);
            checkType(instr, 0, Type::Int);
            checkTarget(instr, 0);
            checkTarget(instr, 1);
            break;
          case Opcode::Call: {
            const Function *callee = instr.callee();
            if (!callee) {
                problemAt(instr, "call without callee");
                break;
            }
            if (instr.numOperands() != callee->numParams()) {
                problemAt(instr, "call arity mismatch");
                break;
            }
            for (size_t i = 0; i < instr.numOperands(); i++)
                checkType(instr, i, callee->param(i)->type());
            break;
          }
          case Opcode::Ret:
            if (f_.returnType() == Type::Void) {
                checkOperandCount(instr, 0);
            } else {
                checkOperandCount(instr, 1);
                checkType(instr, 0, f_.returnType());
            }
            break;
          case Opcode::PmMap:
            checkOperandCount(instr, 0);
            if (instr.regionSize() == 0)
                problemAt(instr, "zero-sized pmmap");
            if (instr.symbol().empty())
                problemAt(instr, "pmmap without a region name");
            break;
          case Opcode::Memcpy:
            checkOperandCount(instr, 3);
            checkType(instr, 0, Type::Ptr);
            checkType(instr, 1, Type::Ptr);
            checkType(instr, 2, Type::Int);
            break;
          case Opcode::Memset:
            checkOperandCount(instr, 3);
            checkType(instr, 0, Type::Ptr);
            checkType(instr, 1, Type::Int);
            checkType(instr, 2, Type::Int);
            break;
          case Opcode::DurPoint:
            checkOperandCount(instr, 0);
            break;
          case Opcode::Print:
            checkOperandCount(instr, 1);
            break;
          case Opcode::ThreadSpawn: {
            const Function *callee = instr.callee();
            if (!callee) {
                problemAt(instr, "thread_spawn without callee");
                break;
            }
            if (instr.numOperands() != callee->numParams()) {
                problemAt(instr, "thread_spawn arity mismatch");
                break;
            }
            for (size_t i = 0; i < instr.numOperands(); i++)
                checkType(instr, i, callee->param(i)->type());
            break;
          }
          case Opcode::ThreadJoin: {
            checkOperandCount(instr, 1);
            checkType(instr, 0, Type::Int);
            if (instr.numOperands() != 1)
                break;
            // Thread ids are only ever produced by thread_spawn (or
            // passed in as arguments); joining anything else — a
            // constant, an arithmetic result, the join itself — is
            // statically ill-formed. This also rejects the direct
            // self-join `%r = thread_join %r`.
            const Value *t = instr.operand(0);
            if (t == &instr) {
                problemAt(instr, "thread_join of its own result");
            } else if (t->kind() == ValueKind::Constant) {
                problemAt(instr, "thread_join of a constant");
            } else if (t->kind() == ValueKind::Instruction &&
                       static_cast<const Instruction *>(t)->op() !=
                           Opcode::ThreadSpawn) {
                problemAt(instr,
                          "thread_join of a non-thread value");
            }
            break;
          }
          case Opcode::AtomicLoad:
            checkOperandCount(instr, 1);
            checkType(instr, 0, Type::Ptr);
            checkAccessSize(instr);
            break;
          case Opcode::AtomicStore:
            checkOperandCount(instr, 2);
            checkType(instr, 1, Type::Ptr);
            checkAccessSize(instr);
            break;
          case Opcode::AtomicRmw:
            checkOperandCount(instr, 2);
            checkType(instr, 0, Type::Ptr);
            checkType(instr, 1, Type::Int);
            checkAccessSize(instr);
            break;
        }
    }

    void
    checkAccessSize(const Instruction &instr)
    {
        uint64_t s = instr.accessSize();
        if (s != 1 && s != 2 && s != 4 && s != 8)
            problemAt(instr, "access size must be 1/2/4/8");
    }

    void
    checkTarget(const Instruction &instr, unsigned slot)
    {
        const BasicBlock *t = instr.target(slot);
        if (!t) {
            problemAt(instr, format("missing branch target %u", slot));
        } else if (!blocks_.count(t)) {
            problemAt(instr, "branch target in another function");
        }
    }

    const Function &f_;
    std::vector<std::string> problems_;
    std::set<const Value *> locals_;
    std::set<const BasicBlock *> blocks_;
};

} // namespace

std::vector<std::string>
verifyFunction(const Function &f)
{
    return FunctionVerifier(f).run();
}

std::vector<std::string>
verifyModule(const Module &m)
{
    std::vector<std::string> problems;
    for (const auto &f : m.functions()) {
        auto ps = verifyFunction(*f);
        problems.insert(problems.end(), ps.begin(), ps.end());
    }
    return problems;
}

void
verifyOrDie(const Module &m)
{
    auto problems = verifyModule(m);
    if (!problems.empty())
        hippo_panic("verifier: %s", problems.front().c_str());
}

} // namespace hippo::ir
