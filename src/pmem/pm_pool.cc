#include "pmem/pm_pool.hh"

#include <algorithm>
#include <cstring>

#include "support/errors.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace hippo::pmem
{

namespace
{

/** Backing bytes for absent (all-zero) pages, borrowed by peek(). */
const CowImage::Page zeroPage{};

/** splitmix64 finalizer — the wb-queue slot hash. */
uint64_t
hashLine(uint64_t line)
{
    uint64_t z = line + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

// -------------------------------------------------------- CowImage

CowImage::Page *
CowImage::writablePage(size_t idx, uint64_t &copies)
{
    PageRef &ref = pages_[idx];
    if (!ref) {
        ref = std::make_shared<Page>(); // value-init: zeros
    } else if (ref.use_count() != 1) {
        // Shared with a snapshot or fork: clone before writing. A
        // count of 1 can only mean this image is the sole owner, so
        // in-place writes are safe even with concurrent forks.
        ref = std::make_shared<Page>(*ref);
        copies++;
    }
    return ref.get();
}

void
CowImage::read(uint64_t off, uint8_t *out, uint64_t n) const
{
    while (n) {
        size_t idx = off / pmPageSize;
        uint64_t in_page = off % pmPageSize;
        uint64_t chunk = std::min(n, pmPageSize - in_page);
        const PageRef &ref = pages_[idx];
        if (ref)
            std::memcpy(out, ref->data() + in_page, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        off += chunk;
        n -= chunk;
    }
}

uint64_t
CowImage::write(uint64_t off, const uint8_t *data, uint64_t n)
{
    uint64_t copies = 0;
    while (n) {
        size_t idx = off / pmPageSize;
        uint64_t in_page = off % pmPageSize;
        uint64_t chunk = std::min(n, pmPageSize - in_page);
        Page *page = writablePage(idx, copies);
        std::memcpy(page->data() + in_page, data, chunk);
        data += chunk;
        off += chunk;
        n -= chunk;
    }
    return copies;
}

const uint8_t *
CowImage::peek(uint64_t off, uint64_t n) const
{
    uint64_t in_page = off % pmPageSize;
    hippo_assert(in_page + n <= pmPageSize,
                 "peek straddles a page boundary");
    const PageRef &ref = pages_[off / pmPageSize];
    return ref ? ref->data() + in_page : zeroPage.data() + in_page;
}

bool
CowImage::rangeEquals(const CowImage &o, uint64_t off, uint64_t n) const
{
    while (n) {
        size_t idx = off / pmPageSize;
        uint64_t in_page = off % pmPageSize;
        uint64_t chunk = std::min(n, pmPageSize - in_page);
        const PageRef &a = pages_[idx];
        const PageRef &b = o.pages_[idx];
        if (a != b) {
            const uint8_t *pa =
                a ? a->data() + in_page : zeroPage.data() + in_page;
            const uint8_t *pb =
                b ? b->data() + in_page : zeroPage.data() + in_page;
            if (std::memcmp(pa, pb, chunk) != 0)
                return false;
        }
        off += chunk;
        n -= chunk;
    }
    return true;
}

// --------------------------------------------------------- WbQueue

void
WbQueue::grow()
{
    size_t target = slots_.empty() ? 64 : slots_.size() * 2;
    slots_.assign(target, Slot());
    gen_ = 1;
    size_t mask = slots_.size() - 1;
    for (uint32_t e = 0; e < entries_.size(); e++) {
        size_t i = hashLine(entries_[e].line) & mask;
        while (slots_[i].gen == gen_)
            i = (i + 1) & mask;
        slots_[i] = {gen_, e};
    }
}

bool
WbQueue::put(uint64_t line, const uint8_t *bytes)
{
    // Grow at 3/4 load so probe chains stay short.
    if ((entries_.size() + 1) * 4 > slots_.size() * 3)
        grow();
    size_t mask = slots_.size() - 1;
    size_t i = hashLine(line) & mask;
    while (slots_[i].gen == gen_) {
        Entry &e = entries_[slots_[i].idx];
        if (e.line == line) {
            std::memcpy(e.data.data(), bytes, cacheLineSize);
            return false;
        }
        i = (i + 1) & mask;
    }
    slots_[i] = {gen_, (uint32_t)entries_.size()};
    Entry e;
    e.line = line;
    std::memcpy(e.data.data(), bytes, cacheLineSize);
    entries_.push_back(e);
    return true;
}

void
WbQueue::clear()
{
    entries_.clear();
    // Stale slots are invalidated by bumping the generation; only a
    // (4-billion-clear) wraparound pays for a table wipe.
    if (++gen_ == 0) {
        slots_.assign(slots_.size(), Slot());
        gen_ = 1;
    }
}

// --------------------------------------------------------- PmOpLog

bool
PmOpLog::charge(uint64_t add)
{
    if (overflowed_)
        return false;
    bytes_ += sizeof(Op) + add;
    if (bytes_ > maxBytes_) {
        overflowed_ = true;
        return false;
    }
    return true;
}

void
PmOpLog::recordMap(const std::string &name, uint64_t size)
{
    if (!charge(name.size()))
        return;
    Op op;
    op.kind = Op::Kind::Map;
    op.addr = size;
    op.dataOff = names_.size();
    names_.push_back(name);
    ops_.push_back(op);
}

void
PmOpLog::recordStore(uint64_t addr, const uint8_t *data, uint64_t size,
                     bool non_temporal)
{
    if (!charge(size))
        return;
    Op op;
    op.kind = Op::Kind::Store;
    op.nonTemporal = non_temporal;
    op.size = (uint32_t)size;
    op.addr = addr;
    op.dataOff = data_.size();
    data_.insert(data_.end(), data, data + size);
    ops_.push_back(op);
}

void
PmOpLog::recordFlush(uint64_t addr, FlushOp fop)
{
    if (!charge(0))
        return;
    Op op;
    op.kind = Op::Kind::Flush;
    op.flushOp = fop;
    op.addr = addr;
    ops_.push_back(op);
}

void
PmOpLog::recordFence()
{
    if (!charge(0))
        return;
    Op op;
    op.kind = Op::Kind::Fence;
    ops_.push_back(op);
}

void
PmOpLog::replayTo(PmPool &pool, size_t end) const
{
    hippo_assert(end <= ops_.size(), "replay cursor past log end");
    for (size_t i = 0; i < end; i++) {
        const Op &op = ops_[i];
        switch (op.kind) {
          case Op::Kind::Map:
            pool.mapRegion(names_[op.dataOff], op.addr);
            break;
          case Op::Kind::Store:
            pool.store(op.addr, data_.data() + op.dataOff, op.size,
                       op.nonTemporal);
            break;
          case Op::Kind::Flush:
            pool.flush(op.addr, op.flushOp);
            break;
          case Op::Kind::Fence:
            pool.fence();
            break;
        }
    }
}

// ---------------------------------------------------------- PmPool

PmPool::PmPool(uint64_t capacity, double evict_chance, uint64_t seed)
    : capacity_((capacity + cacheLineSize - 1) & ~(cacheLineSize - 1)),
      cacheImage_(capacity_), persistImage_(capacity_),
      dirtyPos_(capacity_ / cacheLineSize, dirtyNpos),
      evictChance_(evict_chance), rng_(seed)
{
    hippo_assert(capacity_ > 0, "empty pool");
}

PmPool::PmPool(const Snapshot &s)
    : capacity_(s.capacity), cacheImage_(s.cache),
      persistImage_(s.persist), dirtyLines_(s.dirtyLines),
      dirtyPos_(s.capacity / cacheLineSize, dirtyNpos),
      wbQueue_(s.wbQueue), regions_(s.regions),
      allocCursor_(s.allocCursor), evictChance_(s.evictChance),
      rng_(s.rng), stats_(s.stats)
{
    hippo_assert(capacity_ > 0, "empty snapshot");
    for (uint32_t p = 0; p < dirtyLines_.size(); p++)
        dirtyPos_[dirtyLines_[p]] = p;
}

void
PmPool::markDirty(uint64_t line)
{
    dirtyPos_[line] = (uint32_t)dirtyLines_.size();
    dirtyLines_.push_back((uint32_t)line);
}

void
PmPool::clearDirty(uint64_t line)
{
    uint32_t pos = dirtyPos_[line];
    uint32_t last = dirtyLines_.back();
    dirtyLines_[pos] = last;
    dirtyPos_[last] = pos;
    dirtyLines_.pop_back();
    dirtyPos_[line] = dirtyNpos;
}

void
PmPool::clearAllDirty()
{
    for (uint32_t line : dirtyLines_)
        dirtyPos_[line] = dirtyNpos;
    dirtyLines_.clear();
}

void
PmPool::adoptDirty(const std::vector<uint32_t> &lines)
{
    clearAllDirty();
    dirtyLines_ = lines;
    for (uint32_t p = 0; p < dirtyLines_.size(); p++)
        dirtyPos_[dirtyLines_[p]] = p;
}

uint64_t
PmPool::mapRegion(const std::string &name, uint64_t size)
{
    hippo_assert(size > 0, "empty region");
    if (opLog_)
        opLog_->recordMap(name, size);
    auto it = regions_.find(name);
    if (it != regions_.end()) {
        hippo_assert(it->second.size == size,
                     "region remapped with different size");
        return it->second.base;
    }
    uint64_t aligned =
        (size + cacheLineSize - 1) & ~(cacheLineSize - 1);
    if (allocCursor_ + aligned > capacity_) {
        support::throwResourceError(
            "PM pool exhausted mapping region '%s' "
            "(%llu bytes requested, %llu of %llu free)",
            name.c_str(), (unsigned long long)size,
            (unsigned long long)(capacity_ - allocCursor_),
            (unsigned long long)capacity_);
    }
    PmRegion r{name, pmBaseAddr + allocCursor_, size};
    allocCursor_ += aligned;
    regions_[name] = r;
    return r.base;
}

const PmRegion *
PmPool::findRegion(const std::string &name) const
{
    auto it = regions_.find(name);
    return it == regions_.end() ? nullptr : &it->second;
}

bool
PmPool::contains(uint64_t addr, uint64_t size) const
{
    return addr >= pmBaseAddr && addr + size <= pmBaseAddr + capacity_;
}

void
PmPool::store(uint64_t addr, const uint8_t *data, uint64_t size,
              bool non_temporal)
{
    hippo_assert(contains(addr, size), "PM store out of bounds");
    if (opLog_)
        opLog_->recordStore(addr, data, size, non_temporal);
    uint64_t off = addr - pmBaseAddr;
    stats_.pagesCopied += cacheImage_.write(off, data, size);
    stats_.stores++;
    stats_.storedBytes += size;

    if (non_temporal) {
        // Non-temporal stores enter the write-combining buffer
        // directly; they drain to PM at the next fence and leave no
        // dirty data behind in the cache.
        stats_.ntStores++;
        uint64_t first = lineIndex(addr);
        uint64_t last = lineIndex(addr + size - 1);
        for (uint64_t line = first; line <= last; line++) {
            wbQueue_.put(line, cacheImage_.peek(line * cacheLineSize,
                                                cacheLineSize));
            stats_.linesNtQueued++;
        }
    } else {
        uint64_t first = lineIndex(addr);
        uint64_t last = lineIndex(addr + size - 1);
        for (uint64_t line = first; line <= last; line++) {
            if (!isDirty(line)) {
                stats_.linesDirtied++;
                markDirty(line);
            }
        }
        maybeEvict();
    }
}

void
PmPool::load(uint64_t addr, uint8_t *out, uint64_t size) const
{
    hippo_assert(contains(addr, size), "PM load out of bounds");
    cacheImage_.read(addr - pmBaseAddr, out, size);
}

void
PmPool::flush(uint64_t addr, FlushOp op)
{
    hippo_assert(contains(addr), "PM flush out of bounds");
    if (opLog_)
        opLog_->recordFlush(addr, op);
    stats_.flushes++;
    uint64_t line = lineIndex(addr);
    if (!isDirty(line)) {
        stats_.redundantFlushes++;
        return;
    }
    clearDirty(line);
    const uint8_t *snapshot =
        cacheImage_.peek(line * cacheLineSize, cacheLineSize);
    if (op == FlushOp::Clflush) {
        // CLFLUSH executions are ordered with respect to stores and
        // other CLFLUSHes (Intel SDM), so the line reaches PM without
        // waiting for a fence.
        persistLine(line, snapshot);
        stats_.linesClflushed++;
    } else {
        wbQueue_.put(line, snapshot);
        stats_.linesWbQueued++;
    }
}

void
PmPool::fence()
{
    if (opLog_)
        opLog_->recordFence();
    stats_.fences++;
    stats_.linesFenceDrained += wbQueue_.size();
    for (const WbQueue::Entry &e : wbQueue_.entries())
        persistLine(e.line, e.data.data());
    wbQueue_.clear();
}

void
PmPool::persistLine(uint64_t line, const uint8_t *snapshot)
{
    stats_.pagesCopied += persistImage_.write(line * cacheLineSize,
                                              snapshot, cacheLineSize);
}

void
PmPool::maybeEvict()
{
    if (evictChance_ <= 0 || !rng_.chance(evictChance_))
        return;
    // Pick a random dirty line and write it back, as a real cache
    // might under memory pressure. The legacy dense scan walked
    // cyclically from `start` to the first dirty line; the index scan
    // below selects that same line (minimal cyclic distance), so the
    // RNG draw sequence *and* the victim match seeded legacy runs.
    uint64_t nlines = capacity_ / cacheLineSize;
    uint64_t start = rng_.nextBelow(nlines);
    if (dirtyLines_.empty())
        return;
    uint64_t victim = 0;
    uint64_t best = ~0ULL;
    for (uint32_t line : dirtyLines_) {
        uint64_t dist =
            line >= start ? line - start : line + nlines - start;
        if (dist < best) {
            best = dist;
            victim = line;
        }
    }
    clearDirty(victim);
    persistLine(victim,
                cacheImage_.peek(victim * cacheLineSize, cacheLineSize));
    stats_.evictions++;
    stats_.linesEvicted++;
}

void
PmPool::setFaultPlan(const FaultPlan &plan)
{
    hippo_assert(plan.atomicityBytes > 0 &&
                     cacheLineSize % plan.atomicityBytes == 0,
                 "fault-plan atomicity must divide the line size");
    faultPlan_ = plan;
}

void
PmPool::applyCrashFaults()
{
    // A private RNG seeded from the plan alone: fault decisions never
    // perturb the eviction RNG, so attaching a plan cannot change
    // which states a seeded eviction run would otherwise explore.
    Rng rng(faultPlan_.seed);
    stats_.faultedCrashes++;
    uint64_t chunk = faultPlan_.atomicityBytes;
    uint64_t nchunks = cacheLineSize / chunk;
    uint64_t torn = 0;

    // Persist a random subset of a line's chunks. Any subset is a
    // legal crash state under 8-byte store atomicity; the empty
    // subset degenerates to the whole-line model's "lost line".
    auto tearLine = [&](uint64_t line, const uint8_t *content,
                        bool unflushed) {
        if (torn >= faultPlan_.maxTornLines)
            return;
        if (!rng.chance(faultPlan_.tornChance))
            return;
        bool any = false;
        for (uint64_t c = 0; c < nchunks; c++) {
            if (!rng.chance(0.5))
                continue;
            uint8_t buf[cacheLineSize];
            std::memcpy(buf, content + c * chunk, chunk);
            if (unflushed && faultPlan_.bitRotChance > 0 &&
                rng.chance(faultPlan_.bitRotChance)) {
                uint64_t bit = rng.nextBelow(chunk * 8);
                buf[bit / 8] ^= (uint8_t)(1u << (bit % 8));
                stats_.bitRotFlips++;
            }
            stats_.pagesCopied += persistImage_.write(
                line * cacheLineSize + c * chunk, buf, chunk);
            stats_.tornChunks++;
            any = true;
        }
        if (any) {
            stats_.tornLines++;
            torn++;
        }
    };

    // Deterministic candidate order: dirty lines in index order, then
    // write-back-queue entries in first-queued order. Both orders are
    // functions of the op stream alone, so every replay engine visits
    // them identically.
    for (uint32_t line : dirtyLines_)
        tearLine(line, cacheImage_.peek(line * cacheLineSize,
                                        cacheLineSize),
                 true);
    for (const WbQueue::Entry &e : wbQueue_.entries())
        tearLine(e.line, e.data.data(), false);
}

void
PmPool::crash()
{
    if (faultPlan_.enabled())
        applyCrashFaults();
    cacheImage_ = persistImage_; // page-table copy; pages now shared
    clearAllDirty();
    wbQueue_.clear();
}

PmPool::Snapshot
PmPool::snapshot()
{
    stats_.snapshots++;
    Snapshot s;
    s.capacity = capacity_;
    s.cache = cacheImage_;
    s.persist = persistImage_;
    s.dirtyLines = dirtyLines_;
    s.wbQueue = wbQueue_;
    s.regions = regions_;
    s.allocCursor = allocCursor_;
    s.evictChance = evictChance_;
    s.rng = rng_;
    s.stats = stats_;
    return s;
}

void
PmPool::restoreFrom(const Snapshot &s)
{
    hippo_assert(s.capacity == capacity_,
                 "snapshot from a different-capacity pool");
    cacheImage_ = s.cache;
    persistImage_ = s.persist;
    adoptDirty(s.dirtyLines);
    wbQueue_ = s.wbQueue;
    regions_ = s.regions;
    allocCursor_ = s.allocCursor;
    evictChance_ = s.evictChance;
    rng_ = s.rng;
    stats_ = s.stats;
    stats_.restores++;
}

void
PmPool::loadPersisted(uint64_t addr, uint8_t *out, uint64_t size) const
{
    hippo_assert(contains(addr, size),
                 "persisted load out of bounds");
    persistImage_.read(addr - pmBaseAddr, out, size);
}

bool
PmPool::isPersisted(uint64_t addr, uint64_t size) const
{
    hippo_assert(contains(addr, size), "isPersisted out of bounds");
    uint64_t off = addr - pmBaseAddr;
    return cacheImage_.rangeEquals(persistImage_, off, size);
}

void
PmPool::exportMetrics(support::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + ".stores").inc(stats_.stores);
    reg.counter(prefix + ".stored_bytes").inc(stats_.storedBytes);
    reg.counter(prefix + ".flushes").inc(stats_.flushes);
    reg.counter(prefix + ".redundant_flushes")
        .inc(stats_.redundantFlushes);
    reg.counter(prefix + ".fences").inc(stats_.fences);
    reg.counter(prefix + ".evictions").inc(stats_.evictions);
    reg.counter(prefix + ".nt_stores").inc(stats_.ntStores);
    reg.counter(prefix + ".lines.dirtied").inc(stats_.linesDirtied);
    reg.counter(prefix + ".lines.wb_queued").inc(stats_.linesWbQueued);
    reg.counter(prefix + ".lines.nt_queued").inc(stats_.linesNtQueued);
    reg.counter(prefix + ".lines.clflushed").inc(stats_.linesClflushed);
    reg.counter(prefix + ".lines.fence_drained")
        .inc(stats_.linesFenceDrained);
    reg.counter(prefix + ".lines.evicted").inc(stats_.linesEvicted);
    reg.counter(prefix + ".snapshot.count").inc(stats_.snapshots);
    reg.counter(prefix + ".snapshot.restores").inc(stats_.restores);
    reg.counter(prefix + ".snapshot.pages_copied")
        .inc(stats_.pagesCopied);
    reg.counter(prefix + ".fault.crashes").inc(stats_.faultedCrashes);
    reg.counter(prefix + ".fault.torn_lines").inc(stats_.tornLines);
    reg.counter(prefix + ".fault.torn_chunks").inc(stats_.tornChunks);
    reg.counter(prefix + ".fault.bitrot_flips").inc(stats_.bitRotFlips);
}

} // namespace hippo::pmem
