#include "pmem/pm_pool.hh"

#include <cstring>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace hippo::pmem
{

PmPool::PmPool(uint64_t capacity, double evict_chance, uint64_t seed)
    : capacity_((capacity + cacheLineSize - 1) & ~(cacheLineSize - 1)),
      cacheImage_(capacity_, 0), persistImage_(capacity_, 0),
      dirty_(capacity_ / cacheLineSize, 0), evictChance_(evict_chance),
      rng_(seed)
{
    hippo_assert(capacity_ > 0, "empty pool");
}

uint64_t
PmPool::mapRegion(const std::string &name, uint64_t size)
{
    hippo_assert(size > 0, "empty region");
    auto it = regions_.find(name);
    if (it != regions_.end()) {
        hippo_assert(it->second.size == size,
                     "region remapped with different size");
        return it->second.base;
    }
    uint64_t aligned =
        (size + cacheLineSize - 1) & ~(cacheLineSize - 1);
    if (allocCursor_ + aligned > capacity_)
        hippo_fatal("PM pool exhausted mapping region '%s'",
                    name.c_str());
    PmRegion r{name, pmBaseAddr + allocCursor_, size};
    allocCursor_ += aligned;
    regions_[name] = r;
    return r.base;
}

const PmRegion *
PmPool::findRegion(const std::string &name) const
{
    auto it = regions_.find(name);
    return it == regions_.end() ? nullptr : &it->second;
}

bool
PmPool::contains(uint64_t addr, uint64_t size) const
{
    return addr >= pmBaseAddr && addr + size <= pmBaseAddr + capacity_;
}

void
PmPool::store(uint64_t addr, const uint8_t *data, uint64_t size,
              bool non_temporal)
{
    hippo_assert(contains(addr, size), "PM store out of bounds");
    uint64_t off = addr - pmBaseAddr;
    std::memcpy(&cacheImage_[off], data, size);
    stats_.stores++;
    stats_.storedBytes += size;

    if (non_temporal) {
        // Non-temporal stores enter the write-combining buffer
        // directly; they drain to PM at the next fence and leave no
        // dirty data behind in the cache.
        stats_.ntStores++;
        uint64_t first = lineIndex(addr);
        uint64_t last = lineIndex(addr + size - 1);
        for (uint64_t line = first; line <= last; line++) {
            wbQueue_[line].assign(
                cacheImage_.begin() + line * cacheLineSize,
                cacheImage_.begin() + (line + 1) * cacheLineSize);
            stats_.linesNtQueued++;
        }
    } else {
        uint64_t first = lineIndex(addr);
        uint64_t last = lineIndex(addr + size - 1);
        for (uint64_t line = first; line <= last; line++) {
            stats_.linesDirtied += !dirty_[line];
            dirty_[line] = 1;
        }
        maybeEvict();
    }
}

void
PmPool::load(uint64_t addr, uint8_t *out, uint64_t size) const
{
    hippo_assert(contains(addr, size), "PM load out of bounds");
    std::memcpy(out, &cacheImage_[addr - pmBaseAddr], size);
}

void
PmPool::flush(uint64_t addr, FlushOp op)
{
    hippo_assert(contains(addr), "PM flush out of bounds");
    stats_.flushes++;
    uint64_t line = lineIndex(addr);
    if (!dirty_[line]) {
        stats_.redundantFlushes++;
        return;
    }
    dirty_[line] = 0;
    const uint8_t *snapshot = &cacheImage_[line * cacheLineSize];
    if (op == FlushOp::Clflush) {
        // CLFLUSH executions are ordered with respect to stores and
        // other CLFLUSHes (Intel SDM), so the line reaches PM without
        // waiting for a fence.
        persistLine(line, snapshot);
        stats_.linesClflushed++;
    } else {
        wbQueue_[line].assign(snapshot, snapshot + cacheLineSize);
        stats_.linesWbQueued++;
    }
}

void
PmPool::fence()
{
    stats_.fences++;
    stats_.linesFenceDrained += wbQueue_.size();
    for (const auto &[line, data] : wbQueue_)
        persistLine(line, data.data());
    wbQueue_.clear();
}

void
PmPool::persistLine(uint64_t line, const uint8_t *snapshot)
{
    std::memcpy(&persistImage_[line * cacheLineSize], snapshot,
                cacheLineSize);
}

void
PmPool::maybeEvict()
{
    if (evictChance_ <= 0 || !rng_.chance(evictChance_))
        return;
    // Pick a random dirty line and write it back, as a real cache
    // might under memory pressure.
    uint64_t nlines = dirty_.size();
    uint64_t start = rng_.nextBelow(nlines);
    for (uint64_t i = 0; i < nlines; i++) {
        uint64_t line = (start + i) % nlines;
        if (dirty_[line]) {
            dirty_[line] = 0;
            persistLine(line, &cacheImage_[line * cacheLineSize]);
            stats_.evictions++;
            stats_.linesEvicted++;
            return;
        }
    }
}

void
PmPool::crash()
{
    cacheImage_ = persistImage_;
    std::fill(dirty_.begin(), dirty_.end(), 0);
    wbQueue_.clear();
}

void
PmPool::loadPersisted(uint64_t addr, uint8_t *out, uint64_t size) const
{
    hippo_assert(contains(addr, size),
                 "persisted load out of bounds");
    std::memcpy(out, &persistImage_[addr - pmBaseAddr], size);
}

bool
PmPool::isPersisted(uint64_t addr, uint64_t size) const
{
    hippo_assert(contains(addr, size), "isPersisted out of bounds");
    uint64_t off = addr - pmBaseAddr;
    return std::memcmp(&cacheImage_[off], &persistImage_[off], size) ==
           0;
}

uint64_t
PmPool::dirtyLineCount() const
{
    uint64_t n = 0;
    for (uint8_t d : dirty_)
        n += d;
    return n;
}

void
PmPool::exportMetrics(support::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + ".stores").inc(stats_.stores);
    reg.counter(prefix + ".stored_bytes").inc(stats_.storedBytes);
    reg.counter(prefix + ".flushes").inc(stats_.flushes);
    reg.counter(prefix + ".redundant_flushes")
        .inc(stats_.redundantFlushes);
    reg.counter(prefix + ".fences").inc(stats_.fences);
    reg.counter(prefix + ".evictions").inc(stats_.evictions);
    reg.counter(prefix + ".nt_stores").inc(stats_.ntStores);
    reg.counter(prefix + ".lines.dirtied").inc(stats_.linesDirtied);
    reg.counter(prefix + ".lines.wb_queued").inc(stats_.linesWbQueued);
    reg.counter(prefix + ".lines.nt_queued").inc(stats_.linesNtQueued);
    reg.counter(prefix + ".lines.clflushed").inc(stats_.linesClflushed);
    reg.counter(prefix + ".lines.fence_drained")
        .inc(stats_.linesFenceDrained);
    reg.counter(prefix + ".lines.evicted").inc(stats_.linesEvicted);
}

} // namespace hippo::pmem
