/**
 * @file
 * Persistent-memory pool with a CPU-cache persistency model.
 *
 * The paper's experiments ran on Intel Optane DC NVDIMMs; this repo
 * substitutes a DRAM-backed simulation that implements the x86
 * persistency semantics the paper defines in §2.1/§4.2:
 *
 *  - stores land in the (volatile) cache image and mark their cache
 *    line dirty;
 *  - CLWB / CLFLUSHOPT snapshot the line into a write-back queue that
 *    only reaches the persistent image at the next fence (weakly
 *    ordered);
 *  - CLFLUSH is ordered with respect to stores and other CLFLUSHes,
 *    so it persists the line immediately (no fence required);
 *  - non-temporal stores enter the write-combining queue directly and
 *    also require a fence;
 *  - SFENCE / MFENCE drain the write-back queue into the persistent
 *    image;
 *  - a crash discards the cache image: only the persistent image
 *    survives;
 *  - optional random eviction persists dirty lines spontaneously,
 *    modeling why an unflushed store *may* still become durable
 *    (the possibility used in the safety proofs of Lemmas 1 and 2).
 *
 * Both images are sparse copy-on-write page tables (see CowImage), so
 * snapshot(), crash(), and forking a pool are O(pages) pointer copies
 * rather than O(capacity) byte copies. This is what makes the crash
 * explorer's snapshot engine affordable (DESIGN.md "Snapshot replay
 * engine").
 */

#ifndef HIPPO_PMEM_PM_POOL_HH
#define HIPPO_PMEM_PM_POOL_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/random.hh"

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::pmem
{

/** Cache-line size used throughout the simulator. */
constexpr uint64_t cacheLineSize = 64;

/** COW page granularity of the pool images (a multiple of the line
 *  size, so a cache line never straddles two pages). */
constexpr uint64_t pmPageSize = 4096;

/** Base virtual address at which PM regions are mapped. */
constexpr uint64_t pmBaseAddr = 0x20000000ULL;

/** Flush instruction flavor (mirrors ir::FlushKind). */
enum class FlushOp : uint8_t { Clwb, ClflushOpt, Clflush };

/**
 * Adversarial crash-fault model (DESIGN.md "Fault model & graceful
 * degradation"). The default whole-line crash model is conservative
 * about *what* persists (only fenced/flushed lines) but optimistic
 * about *how*: a line either persists completely or not at all. Real
 * PM guarantees only 8-byte store atomicity, so a power failure can
 * tear an in-flight line, persisting some of its 8-byte chunks and
 * not others.
 *
 * When a plan with tornChance > 0 (or bitRotChance > 0) is attached
 * to a pool, crash() additionally considers every line that was
 * in-flight at the boundary — dirty lines and write-back-queue
 * entries — and, per line, persists a random subset of its
 * atomicityBytes-sized chunks. Unflushed (dirty) lines may also
 * suffer a single-bit flip per persisted chunk, modeling media
 * bit-rot on data that never went through the flush path.
 *
 * Everything is driven by the plan's own seed (never the pool's
 * eviction RNG), and the candidate lines are visited in a
 * deterministic order (dirty-index order, then write-back-queue
 * first-queued order), so a fixed plan yields a byte-identical
 * post-crash image regardless of scheduling or engine.
 */
struct FaultPlan
{
    uint64_t seed = 1;        ///< RNG seed for all fault decisions
    double tornChance = 0;    ///< per-line probability of tearing
    uint32_t atomicityBytes = 8; ///< persist granularity (divides 64)
    uint32_t maxTornLines = ~0u; ///< cap on torn lines per crash
    double bitRotChance = 0;  ///< per-chunk bit-flip odds (dirty lines)

    /** True when crash() must run the fault pass at all. */
    bool enabled() const { return tornChance > 0 || bitRotChance > 0; }
};

/** Counters exposed for benchmarks and the detector. */
struct PmPoolStats
{
    uint64_t stores = 0;
    uint64_t storedBytes = 0;
    uint64_t flushes = 0;
    uint64_t redundantFlushes = 0; ///< flush of a clean line
    uint64_t fences = 0;
    uint64_t evictions = 0;
    uint64_t ntStores = 0;

    /// @name Cache-line state transitions (the persistency model's
    /// clean -> dirty -> write-back-pending -> persisted walk)
    /// @{
    uint64_t linesDirtied = 0;     ///< clean -> dirty
    uint64_t linesWbQueued = 0;    ///< dirty -> pending (CLWB/OPT)
    uint64_t linesNtQueued = 0;    ///< NT store -> pending
    uint64_t linesClflushed = 0;   ///< dirty -> persisted (CLFLUSH)
    uint64_t linesFenceDrained = 0; ///< pending -> persisted
    uint64_t linesEvicted = 0;     ///< dirty -> persisted (evict)
    /// @}

    /// @name Snapshot / copy-on-write accounting
    /// @{
    uint64_t snapshots = 0;   ///< snapshot() calls on this pool
    uint64_t restores = 0;    ///< restoreFrom() calls on this pool
    uint64_t pagesCopied = 0; ///< COW page clones (shared page written)
    /// @}

    /// @name Fault injection (FaultPlan; zero without a plan)
    /// @{
    uint64_t faultedCrashes = 0; ///< crashes with the fault pass run
    uint64_t tornLines = 0;      ///< lines partially persisted
    uint64_t tornChunks = 0;     ///< atomicity chunks persisted by tears
    uint64_t bitRotFlips = 0;    ///< bits flipped in persisted chunks
    /// @}
};

/** A named region inside the pool. */
struct PmRegion
{
    std::string name;
    uint64_t base = 0; ///< absolute address
    uint64_t size = 0;
};

/**
 * A sparse, copy-on-write byte image. Pages are allocated lazily (an
 * absent page reads as zeros) and shared between images by reference;
 * a write to a shared page clones it first. Copying a CowImage copies
 * the page table only, so snapshots and crash() are cheap, and a page
 * is never mutated while shared — concurrent readers of forked images
 * are race-free (DESIGN.md "Snapshot replay engine").
 */
class CowImage
{
  public:
    using Page = std::array<uint8_t, pmPageSize>;
    using PageRef = std::shared_ptr<Page>;

    CowImage() = default;
    explicit CowImage(uint64_t capacity)
        : pages_((capacity + pmPageSize - 1) / pmPageSize)
    {}

    void read(uint64_t off, uint8_t *out, uint64_t n) const;

    /**
     * Write @p n bytes at @p off, cloning any shared page touched.
     * Returns the number of pages cloned (COW copies; fresh zero
     * pages are not counted).
     */
    uint64_t write(uint64_t off, const uint8_t *data, uint64_t n);

    /**
     * Borrow a read-only pointer to the @p n bytes at @p off. The
     * range must not straddle a page boundary (cache lines never
     * do); absent pages yield a pointer into a shared zero page.
     */
    const uint8_t *peek(uint64_t off, uint64_t n) const;

    /** Bytewise equality against @p o over [off, off+n). Shared
     *  pages compare equal by pointer without touching bytes. */
    bool rangeEquals(const CowImage &o, uint64_t off, uint64_t n) const;

    size_t pageCount() const { return pages_.size(); }

  private:
    Page *writablePage(size_t idx, uint64_t &copies);

    std::vector<PageRef> pages_;
};

/**
 * The flushed-but-unfenced line snapshots, keyed by line: a repeated
 * flush of the same line before the fence replaces the pending
 * snapshot (the write-backs coalesce in the memory subsystem), so the
 * fence drains each distinct line exactly once. Entries carry inline
 * 64-byte buffers in first-queued order — no per-line heap
 * allocation, and the drain order is deterministic.
 */
class WbQueue
{
  public:
    struct Entry
    {
        uint64_t line = 0;
        std::array<uint8_t, cacheLineSize> data{};
    };

    /** Insert or overwrite the snapshot for @p line; true = new. */
    bool put(uint64_t line, const uint8_t *bytes);

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear();

    /** Pending entries in drain (first-queued) order. */
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    /** Open-addressing index into entries_: a slot is live only when
     *  its generation matches gen_, so clear() is O(1). */
    struct Slot
    {
        uint32_t gen = 0;
        uint32_t idx = 0;
    };

    void grow();

    std::vector<Entry> entries_;
    std::vector<Slot> slots_; ///< power-of-two size
    uint32_t gen_ = 1;
};

class PmPool;

/**
 * A replayable record of every pool-mutating call (map / store /
 * flush / fence). The crash explorer's checkpointed-replay mode
 * records one log during the master run and replays prefixes of it
 * against fresh pools: because random evictions never change the
 * cache image (only the persistent image and dirty flags), the
 * program's instruction stream — and therefore this op stream — is
 * identical for every eviction seed, so replaying ops [0, k) through
 * the public pool API reproduces the pool state a full re-execution
 * with that seed would reach, RNG draws included.
 */
class PmOpLog
{
  public:
    explicit PmOpLog(uint64_t max_bytes = ~0ULL) : maxBytes_(max_bytes)
    {}

    /** Current log position (op count); a replay cursor. */
    size_t position() const { return ops_.size(); }

    /** True when the byte budget stopped recording: positions taken
     *  after the overflow are unusable. */
    bool overflowed() const { return overflowed_; }

    uint64_t approxBytes() const { return bytes_; }

    /// @name Recording (PmPool calls these when a log is attached)
    /// @{
    void recordMap(const std::string &name, uint64_t size);
    void recordStore(uint64_t addr, const uint8_t *data, uint64_t size,
                     bool non_temporal);
    void recordFlush(uint64_t addr, FlushOp op);
    void recordFence();
    /// @}

    /** Apply ops [0, end) to @p pool through its public API. */
    void replayTo(PmPool &pool, size_t end) const;

  private:
    struct Op
    {
        enum class Kind : uint8_t { Map, Store, Flush, Fence };
        Kind kind = Kind::Fence;
        bool nonTemporal = false;
        FlushOp flushOp = FlushOp::Clwb;
        uint32_t size = 0;
        uint64_t addr = 0;    ///< store/flush address; map size
        uint64_t dataOff = 0; ///< store payload offset / map name idx
    };

    bool charge(uint64_t add);

    std::vector<Op> ops_;
    std::vector<uint8_t> data_;       ///< store payload arena
    std::vector<std::string> names_;  ///< region names (Map ops)
    uint64_t bytes_ = 0;
    uint64_t maxBytes_;
    bool overflowed_ = false;
};

/**
 * The simulated persistent pool. Addresses handed out are absolute
 * (>= pmBaseAddr) so they can share the VM's single address space
 * with volatile memory.
 *
 * Not thread-safe: a pool belongs to one worker at a time (each
 * parallel crash replay builds its own pool; see DESIGN.md
 * "Threading model"). Pools *forked* from one Snapshot may run
 * concurrently: the shared COW pages are immutable while shared.
 * The eviction RNG is per-pool, seeded by the constructor, so replay
 * randomness is independent of scheduling.
 */
class PmPool
{
  public:
    /**
     * A cheap point-in-time copy of the complete pool state (both
     * images by page reference, dirty set, write-back queue, region
     * table, RNG, stats). Restore it into the originating pool or
     * fork any number of independent pools from it.
     */
    struct Snapshot
    {
        uint64_t capacity = 0;
        CowImage cache;
        CowImage persist;
        std::vector<uint32_t> dirtyLines;
        WbQueue wbQueue;
        std::map<std::string, PmRegion> regions;
        uint64_t allocCursor = 0;
        double evictChance = 0;
        Rng rng{1};
        PmPoolStats stats;
    };

    /**
     * @param capacity Pool capacity in bytes (rounded up to a line).
     * @param evict_chance Per-store probability of evicting a random
     *        dirty line (0 disables eviction injection).
     * @param seed RNG seed for eviction injection.
     */
    explicit PmPool(uint64_t capacity, double evict_chance = 0.0,
                    uint64_t seed = 1);

    /** Fork: a pool whose state is @p s (stats included). */
    explicit PmPool(const Snapshot &s);

    /**
     * Map (or re-map) the named region. Mapping the same name twice
     * returns the same base address; the size must match.
     */
    uint64_t mapRegion(const std::string &name, uint64_t size);

    /** Look up a mapped region; null when absent. */
    const PmRegion *findRegion(const std::string &name) const;

    /** All mapped regions by name. */
    const std::map<std::string, PmRegion> &regions() const
    {
        return regions_;
    }

    /** True when [addr, addr+size) lies inside the pool. */
    bool contains(uint64_t addr, uint64_t size = 1) const;

    /// @name Memory operations (the VM calls these)
    /// @{
    void store(uint64_t addr, const uint8_t *data, uint64_t size,
               bool non_temporal = false);
    void load(uint64_t addr, uint8_t *out, uint64_t size) const;
    void flush(uint64_t addr, FlushOp op);
    void fence();
    /// @}

    /**
     * Simulate a power failure: the cache image is discarded and
     * reloaded from the persistent image; all line state clears.
     * O(dirty lines + pages) — no byte copying. With a FaultPlan
     * attached, in-flight lines may first tear into the persistent
     * image at sub-line granularity (see FaultPlan).
     */
    void crash();

    /**
     * Attach the adversarial crash-fault model. Not part of
     * Snapshot: forked pools start fault-free and callers (the crash
     * explorer) attach a per-replay plan explicitly, which is what
     * keeps exploration byte-identical at any jobs setting.
     * atomicityBytes must be a nonzero divisor of the line size.
     */
    void setFaultPlan(const FaultPlan &plan);

    const FaultPlan &faultPlan() const { return faultPlan_; }

    /** Capture the complete pool state. O(pages) pointer copies. */
    Snapshot snapshot();

    /**
     * Rewind this pool to @p s (which must come from a pool of the
     * same capacity). Stats rewind too; the restore itself is then
     * counted on top of the restored figures.
     */
    void restoreFrom(const Snapshot &s);

    /** Read bytes as they would appear after a crash right now. */
    void loadPersisted(uint64_t addr, uint8_t *out,
                       uint64_t size) const;

    /** True when every byte of [addr, addr+size) is persisted (cache
     *  image and persistent image agree). */
    bool isPersisted(uint64_t addr, uint64_t size) const;

    /** Number of cache lines currently dirty (unflushed). O(1). */
    uint64_t dirtyLineCount() const { return dirtyLines_.size(); }

    /** Entries waiting in the write-back queue (flushed, unfenced). */
    uint64_t pendingWritebacks() const { return wbQueue_.size(); }

    /**
     * Attach (or detach, with null) an op log; every subsequent
     * mutating call is recorded. The log must outlive the
     * attachment. Recording does not alter pool behavior.
     */
    void setOpLog(PmOpLog *log) { opLog_ = log; }

    const PmPoolStats &stats() const { return stats_; }
    void resetStats() { stats_ = PmPoolStats(); }

    /**
     * Accumulate this pool's operation and line-state-transition
     * counters into @p reg under "<prefix>.". Deterministic: every
     * value is an order-independent sum.
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "pmem") const;

    uint64_t capacity() const { return capacity_; }

  private:
    static constexpr uint32_t dirtyNpos = ~0u;

    uint64_t lineIndex(uint64_t addr) const
    {
        return (addr - pmBaseAddr) / cacheLineSize;
    }

    bool isDirty(uint64_t line) const
    {
        return dirtyPos_[line] != dirtyNpos;
    }
    void markDirty(uint64_t line);
    void clearDirty(uint64_t line);
    void clearAllDirty();
    void adoptDirty(const std::vector<uint32_t> &lines);

    void persistLine(uint64_t line, const uint8_t *snapshot);
    void maybeEvict();
    void applyCrashFaults();

    uint64_t capacity_;
    CowImage cacheImage_;   ///< what loads observe
    CowImage persistImage_; ///< what survives a crash

    /** Dirty-line index: the unordered line list plus each line's
     *  position in it (dirtyNpos = clean), for O(1) membership,
     *  count, insert, and swap-removal. */
    std::vector<uint32_t> dirtyLines_;
    std::vector<uint32_t> dirtyPos_;

    WbQueue wbQueue_;

    std::map<std::string, PmRegion> regions_;
    uint64_t allocCursor_ = 0;

    double evictChance_;
    Rng rng_;
    FaultPlan faultPlan_;
    PmPoolStats stats_;
    PmOpLog *opLog_ = nullptr;
};

} // namespace hippo::pmem

#endif // HIPPO_PMEM_PM_POOL_HH
