/**
 * @file
 * Persistent-memory pool with a CPU-cache persistency model.
 *
 * The paper's experiments ran on Intel Optane DC NVDIMMs; this repo
 * substitutes a DRAM-backed simulation that implements the x86
 * persistency semantics the paper defines in §2.1/§4.2:
 *
 *  - stores land in the (volatile) cache image and mark their cache
 *    line dirty;
 *  - CLWB / CLFLUSHOPT snapshot the line into a write-back queue that
 *    only reaches the persistent image at the next fence (weakly
 *    ordered);
 *  - CLFLUSH is ordered with respect to stores and other CLFLUSHes,
 *    so it persists the line immediately (no fence required);
 *  - non-temporal stores enter the write-combining queue directly and
 *    also require a fence;
 *  - SFENCE / MFENCE drain the write-back queue into the persistent
 *    image;
 *  - a crash discards the cache image: only the persistent image
 *    survives;
 *  - optional random eviction persists dirty lines spontaneously,
 *    modeling why an unflushed store *may* still become durable
 *    (the possibility used in the safety proofs of Lemmas 1 and 2).
 */

#ifndef HIPPO_PMEM_PM_POOL_HH
#define HIPPO_PMEM_PM_POOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/random.hh"

namespace hippo::support
{
class MetricsRegistry;
} // namespace hippo::support

namespace hippo::pmem
{

/** Cache-line size used throughout the simulator. */
constexpr uint64_t cacheLineSize = 64;

/** Base virtual address at which PM regions are mapped. */
constexpr uint64_t pmBaseAddr = 0x20000000ULL;

/** Flush instruction flavor (mirrors ir::FlushKind). */
enum class FlushOp : uint8_t { Clwb, ClflushOpt, Clflush };

/** Counters exposed for benchmarks and the detector. */
struct PmPoolStats
{
    uint64_t stores = 0;
    uint64_t storedBytes = 0;
    uint64_t flushes = 0;
    uint64_t redundantFlushes = 0; ///< flush of a clean line
    uint64_t fences = 0;
    uint64_t evictions = 0;
    uint64_t ntStores = 0;

    /// @name Cache-line state transitions (the persistency model's
    /// clean -> dirty -> write-back-pending -> persisted walk)
    /// @{
    uint64_t linesDirtied = 0;     ///< clean -> dirty
    uint64_t linesWbQueued = 0;    ///< dirty -> pending (CLWB/OPT)
    uint64_t linesNtQueued = 0;    ///< NT store -> pending
    uint64_t linesClflushed = 0;   ///< dirty -> persisted (CLFLUSH)
    uint64_t linesFenceDrained = 0; ///< pending -> persisted
    uint64_t linesEvicted = 0;     ///< dirty -> persisted (evict)
    /// @}
};

/** A named region inside the pool. */
struct PmRegion
{
    std::string name;
    uint64_t base = 0; ///< absolute address
    uint64_t size = 0;
};

/**
 * The simulated persistent pool. Addresses handed out are absolute
 * (>= pmBaseAddr) so they can share the VM's single address space
 * with volatile memory.
 *
 * Not thread-safe: a pool belongs to one worker at a time (each
 * parallel crash replay builds its own pool; see DESIGN.md
 * "Threading model"). The eviction RNG is per-pool, seeded by the
 * constructor, so replay randomness is independent of scheduling.
 */
class PmPool
{
  public:
    /**
     * @param capacity Pool capacity in bytes (rounded up to a line).
     * @param evict_chance Per-store probability of evicting a random
     *        dirty line (0 disables eviction injection).
     * @param seed RNG seed for eviction injection.
     */
    explicit PmPool(uint64_t capacity, double evict_chance = 0.0,
                    uint64_t seed = 1);

    /**
     * Map (or re-map) the named region. Mapping the same name twice
     * returns the same base address; the size must match.
     */
    uint64_t mapRegion(const std::string &name, uint64_t size);

    /** Look up a mapped region; null when absent. */
    const PmRegion *findRegion(const std::string &name) const;

    /** All mapped regions by name. */
    const std::map<std::string, PmRegion> &regions() const
    {
        return regions_;
    }

    /** True when [addr, addr+size) lies inside the pool. */
    bool contains(uint64_t addr, uint64_t size = 1) const;

    /// @name Memory operations (the VM calls these)
    /// @{
    void store(uint64_t addr, const uint8_t *data, uint64_t size,
               bool non_temporal = false);
    void load(uint64_t addr, uint8_t *out, uint64_t size) const;
    void flush(uint64_t addr, FlushOp op);
    void fence();
    /// @}

    /**
     * Simulate a power failure: the cache image is discarded and
     * reloaded from the persistent image; all line state clears.
     */
    void crash();

    /** Read bytes as they would appear after a crash right now. */
    void loadPersisted(uint64_t addr, uint8_t *out,
                       uint64_t size) const;

    /** True when every byte of [addr, addr+size) is persisted (cache
     *  image and persistent image agree). */
    bool isPersisted(uint64_t addr, uint64_t size) const;

    /** Number of cache lines currently dirty (unflushed). */
    uint64_t dirtyLineCount() const;

    /** Entries waiting in the write-back queue (flushed, unfenced). */
    uint64_t pendingWritebacks() const { return wbQueue_.size(); }

    const PmPoolStats &stats() const { return stats_; }
    void resetStats() { stats_ = PmPoolStats(); }

    /**
     * Accumulate this pool's operation and line-state-transition
     * counters into @p reg under "<prefix>.". Deterministic: every
     * value is an order-independent sum.
     */
    void exportMetrics(support::MetricsRegistry &reg,
                       const std::string &prefix = "pmem") const;

    uint64_t capacity() const { return capacity_; }

  private:
    uint64_t lineIndex(uint64_t addr) const
    {
        return (addr - pmBaseAddr) / cacheLineSize;
    }

    void persistLine(uint64_t line, const uint8_t *snapshot);
    void maybeEvict();

    uint64_t capacity_;
    std::vector<uint8_t> cacheImage_;   ///< what loads observe
    std::vector<uint8_t> persistImage_; ///< what survives a crash
    std::vector<uint8_t> dirty_;        ///< per-line dirty flag

    /**
     * Flushed-but-unfenced line snapshots, keyed by line: a repeated
     * flush of the same line before the fence replaces the pending
     * snapshot (the write-backs coalesce in the memory subsystem),
     * so the fence drains each distinct line once.
     */
    std::map<uint64_t, std::vector<uint8_t>> wbQueue_;

    std::map<std::string, PmRegion> regions_;
    uint64_t allocCursor_ = 0;

    double evictChance_;
    Rng rng_;
    PmPoolStats stats_;
};

} // namespace hippo::pmem

#endif // HIPPO_PMEM_PM_POOL_HH
