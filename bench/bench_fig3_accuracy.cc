/**
 * @file
 * Regenerates Fig. 3: the qualitative comparison between
 * Hippocrates's fixes and the PMDK developers' fixes for the 11
 * reproduced unit-test bugs.
 *
 * Paper result: 8/11 functionally identical (interprocedural
 * flush+fence on both sides); 3/11 (issues 452, 940, 943)
 * functionally equivalent, with Hippocrates inserting an
 * intraprocedural CLWB where the developers used a more
 * machine-portable interprocedural libpmem flush.
 */

#include <cstdio>
#include <map>

#include "apps/bugsuite.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    using apps::DevFixStyle;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Fig. 3 — Hippocrates fixes vs PMDK developer "
                  "fixes (11 reproduced unit-test bugs)");

    struct Row
    {
        std::vector<std::string> issues;
        std::string hippo;
        std::string dev;
        std::string verdict;
        bool allValid = true;
    };
    std::map<std::string, Row> rows;

    bool all_ok = true;
    size_t cases = 0, identical = 0;
    for (const auto &c : apps::pmdkBugCases()) {
        auto res = apps::evaluateCase(c);
        bool valid = res.detected && res.fixedClean && res.devClean &&
                     res.persistedStateMatches;
        all_ok &= valid;
        cases++;
        identical +=
            c.devStyle == DevFixStyle::InterproceduralFlushFence;

        std::string hippo =
            res.hippoKind == core::FixKind::Interprocedural
                ? "Interprocedural flush+fence"
                : format("Intraprocedural flush (%s)",
                         "clwb");
        std::string dev = apps::devFixStyleName(c.devStyle);
        std::string verdict =
            c.devStyle == DevFixStyle::InterproceduralFlushFence
                ? "Functionally identical"
                : "Functionally equivalent; developer fix is more "
                  "portable";

        Row &row = rows[hippo + dev];
        row.issues.push_back(c.id.substr(5)); // strip "pmdk-"
        row.hippo = hippo;
        row.dev = dev;
        row.verdict = verdict;
        row.allValid &= valid;
    }

    bench::Table table({"Issue #s", "Hippocrates fix",
                        "Developer fix", "Qualitative comparison",
                        "Validated"});
    for (const auto &[key, row] : rows) {
        std::string issues;
        for (const auto &i : row.issues)
            issues += (issues.empty() ? "" : ", ") + i;
        table.addRow({issues, row.hippo, row.dev, row.verdict,
                      row.allValid ? "yes" : "NO"});
    }
    table.print();

    std::printf("\nValidation: every case re-checks clean after the "
                "Hippocrates repair, the developer build is clean, "
                "and both persist identical state across a crash at "
                "the durability point.\n");
    std::printf("Paper reference: 8/11 functionally identical, 3/11 "
                "functionally equivalent (452, 940, 943).\n");

    auto &reg = support::MetricsRegistry::global();
    reg.counter("accuracy.cases").inc(cases);
    reg.counter("accuracy.identical").inc(identical);
    reg.counter("accuracy.equivalent").inc(cases - identical);
    reg.counter("accuracy.validated").inc(all_ok ? cases : 0);
    bench::finishBench(opt, "bench_fig3_accuracy");
    return all_ok ? 0 : 1;
}
