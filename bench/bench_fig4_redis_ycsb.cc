/**
 * @file
 * Regenerates Fig. 4 and the §6.3 case study: YCSB throughput of the
 * three persistent Redis variants —
 *
 *   RedisH-intra: flush-free pmkv repaired with intraprocedural
 *                 fixes only (heuristic disabled);
 *   Redis-pm:     the manually-developed durable build;
 *   RedisH-full:  flush-free pmkv repaired with the full heuristic.
 *
 * Reported per workload (Load + A-F): mean throughput over N trials
 * with 95% confidence intervals, plus the paper's headline ratios
 * (RedisH-full vs Redis-pm, RedisH-full vs RedisH-intra) and the fix
 * census (total fixes, interprocedural share, hoist depths).
 *
 * Knobs: HIPPO_FIG4_RECORDS (default 800), HIPPO_FIG4_OPS (800),
 * HIPPO_FIG4_TRIALS (20).
 */

#include <cstdio>

#include "apps/kv_driver.hh"
#include "bench_util.hh"
#include "shard/shard.hh"
#include "support/stats.hh"
#include "ycsb/concurrent.hh"

namespace
{

using namespace hippo;

double
oneTrial(ir::Module *m, ycsb::Workload w, uint64_t records,
         uint64_t ops, uint64_t seed)
{
    pmem::PmPool pool(32u << 20);
    apps::KvDriver driver(m, &pool);
    driver.init();
    if (w == ycsb::Workload::Load) {
        auto res = driver.run(w, records, records, seed);
        return res.throughput();
    }
    driver.run(ycsb::Workload::Load, records, records, seed * 31 + 7);
    auto res = driver.run(w, records, ops, seed);
    return res.throughput();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Fig. 4 — YCSB throughput of the persistent Redis "
                  "variants (simulated ops/sec, 95% CI)");

    uint64_t records = bench::knob(opt, "HIPPO_FIG4_RECORDS", 800, 96);
    uint64_t ops = bench::knob(opt, "HIPPO_FIG4_OPS", 800, 96);
    uint64_t trials = bench::knob(opt, "HIPPO_FIG4_TRIALS", 20, 2);

    std::printf("records=%llu ops=%llu trials=%llu\n",
                (unsigned long long)records, (unsigned long long)ops,
                (unsigned long long)trials);

    auto variants = apps::buildRedisVariants(
        {}, analysis::AaMode::FullAA, /*optimized=*/true);
    struct V
    {
        const char *name;
        ir::Module *m;
    };
    const V vs[3] = {
        {"RedisH-intra", variants.hippoIntra.get()},
        {"Redis-pm", variants.manual.get()},
        {"RedisH-full", variants.hippoFull.get()},
    };
    const ycsb::Workload workloads[] = {
        ycsb::Workload::Load, ycsb::Workload::A, ycsb::Workload::B,
        ycsb::Workload::C,    ycsb::Workload::D, ycsb::Workload::E,
        ycsb::Workload::F,
    };

    bench::Table table({"Workload", "RedisH-intra", "Redis-pm",
                        "RedisH-full", "full/pm", "full/intra"});
    double min_ratio_intra = 1e30, max_ratio_intra = 0;
    bool ordering_holds = true;

    for (auto w : workloads) {
        SampleStats stats[3];
        for (uint64_t t = 0; t < trials; t++) {
            for (int v = 0; v < 3; v++) {
                stats[v].add(oneTrial(vs[v].m, w, records, ops,
                                      1000 + t * 13 + v));
            }
        }
        double full = stats[2].mean();
        double pm = stats[1].mean();
        double intra = stats[0].mean();
        double r_pm = pm > 0 ? full / pm : 0;
        double r_intra = intra > 0 ? full / intra : 0;
        min_ratio_intra = std::min(min_ratio_intra, r_intra);
        max_ratio_intra = std::max(max_ratio_intra, r_intra);
        // "equal or slightly better" within the confidence interval
        ordering_holds &=
            full + stats[2].ci95() + stats[1].ci95() >= pm;

        auto cell = [](const SampleStats &s) {
            return format("%.0f +/- %.0f", s.mean(), s.ci95());
        };
        table.addRow({ycsb::workloadName(w), cell(stats[0]),
                      cell(stats[1]), cell(stats[2]),
                      format("%.2f", r_pm),
                      format("%.1fx", r_intra)});

        // Throughput is simulated ops/sec, so the means are
        // deterministic and baseline-comparable.
        auto &reg = support::MetricsRegistry::global();
        std::string p = std::string("fig4.") + ycsb::workloadName(w);
        reg.doubleSum(p + ".intra_mean").add(intra);
        reg.doubleSum(p + ".pm_mean").add(pm);
        reg.doubleSum(p + ".full_mean").add(full);
    }
    table.print();

    bench::banner("§6.3 fix census (Hippocrates on flush-free pmkv)");
    const auto &full = variants.fullSummary;
    const auto &intra = variants.intraSummary;
    std::printf("bugs found in flush-free build : %zu\n",
                variants.flushFreeReport.bugs.size());
    std::printf("RedisH-full : %s\n", full.str().c_str());
    std::printf("  interprocedural fixes        : %zu/%zu (%.0f%%)\n",
                full.interproceduralCount(), full.fixes.size(),
                100.0 * full.interproceduralCount() /
                    full.fixes.size());
    std::printf("  hoisted 1 frame above store  : %zu\n",
                full.hoistedAtLevel(1));
    std::printf("  hoisted 2 frames above store : %zu\n",
                full.hoistedAtLevel(2));
    std::printf("RedisH-intra: %s\n", intra.str().c_str());

    std::printf("\nRedisH-full vs RedisH-intra across workloads: "
                "%.1fx - %.1fx (paper: 2.4x - 11.7x)\n",
                min_ratio_intra, max_ratio_intra);
    std::printf("Paper reference: RedisH-full matches or exceeds "
                "Redis-pm (up to 7%% on Load); 12/50 fixes "
                "interprocedural (10 one frame, 2 two frames "
                "above the PM modification).\n");

    // Ablation: naive fix (RedisH-full as the fixer emitted it) vs
    // the same fix after the global flush/fence optimizer. Static
    // counts come from the optimizer stats; dynamic counts from the
    // Vm flush/fence probes over the YCSB hot path (Load + A).
    bench::banner("Ablation — naive fix vs optimized fix "
                  "(flush/fence counts, YCSB Load+A)");
    std::printf("optimizer: %s\n", variants.optStats.str().c_str());

    // The hot-path construction is shared with bench_flush_opt and
    // bench_vm_dispatch (bench::runKvHotPath), so all three — and
    // the sharded leg below — measure the same op stream.
    auto naive = bench::runKvHotPath(variants.hippoFull.get(),
                                     ycsb::Workload::A, records, ops,
                                     424243, 424247,
                                     vm::VmEngine::Auto, 32u << 20);
    auto optd = bench::runKvHotPath(variants.hippoOpt.get(),
                                    ycsb::Workload::A, records, ops,
                                    424243, 424247,
                                    vm::VmEngine::Auto, 32u << 20);
    double flush_cut =
        naive.flushes
            ? 100.0 * (double)(naive.flushes - optd.flushes) /
                  (double)naive.flushes
            : 0;
    double speedup = naive.throughput() > 0
                         ? optd.throughput() / naive.throughput()
                         : 0;
    std::printf("naive fix   : %llu flush(es), %llu fence(s), "
                "%.0f ops/sec\n",
                (unsigned long long)naive.flushes,
                (unsigned long long)naive.fences,
                naive.throughput());
    std::printf("optimized   : %llu flush(es), %llu fence(s), "
                "%.0f ops/sec\n",
                (unsigned long long)optd.flushes,
                (unsigned long long)optd.fences, optd.throughput());
    std::printf("flushes executed cut by %.1f%%; throughput %.2fx\n",
                flush_cut, speedup);

    // Sharded leg: the same Load + A stream through the shard
    // router and N private (pool, VM, log) workers. The aggregate
    // op/step counters are shard-count invariant (whole-bucket
    // routing), so they are baseline-comparable even though the
    // shard count is a knob outside smoke mode.
    bench::banner("Sharded pmkv (front-end router, per-shard "
                  "pools/VMs/logs)");
    {
        unsigned shard_count =
            opt.smoke ? 4 : (opt.shards ? opt.shards : 4);
        shard::ShardConfig scfg;
        scfg.shards = shard_count;
        scfg.jobs = opt.smoke ? 1 : opt.jobs;
        scfg.kv.variant = apps::PmkvVariant::Manual;
        auto sm = apps::buildPmkv(scfg.kv);
        shard::ShardedKv kv(sm.get(), scfg);
        kv.init();
        auto load_ops = ycsb::buildLoadOps(records, shard_count);
        ycsb::ConcurrentSpec cspec;
        cspec.workload = ycsb::Workload::A;
        cspec.recordCount = records;
        cspec.opCount = ops;
        cspec.clients = shard_count;
        cspec.seed = 424247;
        auto run_ops = ycsb::buildConcurrentOps(cspec);
        auto ls = kv.run(load_ops.ops);
        auto rs = kv.run(run_ops.ops);
        std::printf("shards=%u jobs=%u: %llu ops (%llu sub-ops), "
                    "%llu op steps, %.0f ops/sec simulated "
                    "(makespan), %.4fs wall\n",
                    shard_count, scfg.jobs,
                    (unsigned long long)(ls.ops + rs.ops),
                    (unsigned long long)(ls.subOps + rs.subOps),
                    (unsigned long long)(ls.opSteps + rs.opSteps),
                    rs.throughput(),
                    ls.wallSeconds + rs.wallSeconds);
        kv.exportMetrics(support::MetricsRegistry::global(),
                         "fig4.shard");
    }

    auto &reg = support::MetricsRegistry::global();
    variants.fullSummary.exportMetrics(reg, "fig4.fixer_full");
    variants.intraSummary.exportMetrics(reg, "fig4.fixer_intra");
    variants.optStats.exportMetrics(reg, "fig4.opt");
    reg.counter("fig4.opt.dyn_flushes_naive").inc(naive.flushes);
    reg.counter("fig4.opt.dyn_flushes_optimized").inc(optd.flushes);
    reg.counter("fig4.opt.dyn_fences_naive").inc(naive.fences);
    reg.counter("fig4.opt.dyn_fences_optimized").inc(optd.fences);
    reg.doubleSum("fig4.opt.throughput_ratio").add(speedup);
    bench::finishBench(opt, "bench_fig4_redis_ycsb");
    return ordering_holds && min_ratio_intra > 2.0 ? 0 : 1;
}
