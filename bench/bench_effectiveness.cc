/**
 * @file
 * Regenerates the §6.1 effectiveness result: Hippocrates fixes all
 * 23 durability bugs reproduced across PMDK (11), P-CLHT (2), and
 * memcached-pm (10); re-running the bug finder on every repaired
 * program reports zero remaining bugs; and the Full-AA and Trace-AA
 * heuristic variants produce identical fixes.
 */

#include <algorithm>
#include <cstdio>

#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "bench_util.hh"
#include "pmem/pm_pool.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace
{

using namespace hippo;

struct TargetResult
{
    std::string name;
    size_t bugsFound = 0;
    size_t bugsFixed = 0;
    bool recheckClean = false;
    bool aaModesAgree = false;
};

/** Run detect -> fix -> re-check on a single-module target, once per
 *  AA mode, and compare the fix sets. */
TargetResult
runTarget(const std::string &name,
          const std::function<std::unique_ptr<ir::Module>()> &build,
          const std::string &entry, uint64_t arg)
{
    TargetResult out;
    out.name = name;

    core::FixSummary summaries[2];
    bool clean[2] = {false, false};
    size_t found = 0;
    for (int mode = 0; mode < 2; mode++) {
        auto m = build();
        pmem::PmPool pool(16u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run(entry, {arg});
        auto report = pmcheck::analyze(machine.trace());
        found = report.bugs.size();

        core::FixerConfig cfg;
        cfg.aaMode = mode == 0 ? analysis::AaMode::FullAA
                               : analysis::AaMode::TraceAA;
        core::Fixer fixer(m.get(), cfg);
        summaries[mode] = fixer.fix(report, machine.trace(),
                                    &machine.dynPointsTo());

        pmem::PmPool vpool(16u << 20);
        vm::Vm check(m.get(), &vpool, vc);
        check.run(entry, {arg});
        clean[mode] = pmcheck::analyze(check.trace()).clean();
    }

    out.bugsFound = found;
    out.bugsFixed = summaries[0].bugsFixed;
    out.recheckClean = clean[0] && clean[1];
    out.aaModesAgree =
        summaries[0].fixes.size() == summaries[1].fixes.size();
    if (out.aaModesAgree) {
        for (size_t i = 0; i < summaries[0].fixes.size(); i++) {
            const auto &a = summaries[0].fixes[i];
            const auto &b = summaries[1].fixes[i];
            if (a.kind != b.kind || a.function != b.function ||
                a.anchorInstrId != b.anchorInstrId ||
                a.hoistLevels != b.hoistLevels) {
                out.aaModesAgree = false;
                break;
            }
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("§6.1 Effectiveness — fixing all 23 reproduced "
                  "durability bugs");

    // Smoke fixes the worker count so the run is host-independent
    // (the counters are anyway; this pins scheduling too).
    unsigned jobs = (unsigned)bench::knob(
        opt, "HIPPO_JOBS", support::hardwareConcurrency(), 2);

    std::vector<TargetResult> results;

    // The 11 PMDK issue reproductions, each its own module: the
    // fix->re-verify pipeline fans out one worker per bug program.
    {
        core::FixerConfig fcfg;
        fcfg.jobs = jobs;
        core::FixerConfig tcfg;
        tcfg.jobs = jobs;
        tcfg.aaMode = analysis::AaMode::TraceAA;
        auto fulls = apps::evaluateCases(apps::pmdkBugCases(), fcfg);
        auto trs = apps::evaluateCases(apps::pmdkBugCases(), tcfg);

        TargetResult pmdk;
        pmdk.name = "PMDK (unit tests)";
        pmdk.recheckClean = true;
        pmdk.aaModesAgree = true;
        for (size_t i = 0; i < fulls.size(); i++) {
            const auto &full = fulls[i];
            const auto &tr = trs[i];
            pmdk.bugsFound += full.detected ? 1 : 0;
            pmdk.bugsFixed += full.fixedClean ? 1 : 0;
            pmdk.recheckClean &= full.fixedClean && tr.fixedClean;
            pmdk.aaModesAgree &= full.hippoKind == tr.hippoKind;
        }
        results.push_back(pmdk);
    }

    // The two whole-program targets repair concurrently too.
    results.resize(3);
    {
        support::ThreadPool pool(std::min(jobs, 2u));
        pool.parallelForEach(1, 3, [&](uint64_t i) {
            results[i] =
                i == 1 ? runTarget("P-CLHT (RECIPE)",
                                   [] { return apps::buildPclht({}); },
                                   "clht_example", 24)
                       : runTarget("memcached-pm",
                                   [] {
                                       return apps::buildPmcache({});
                                   },
                                   "mc_example", 24);
        });
    }

    bench::Table table({"Target", "Bugs found", "Bugs fixed",
                        "Re-check clean", "Full-AA == Trace-AA"});
    size_t total_found = 0, total_fixed = 0;
    for (const auto &r : results) {
        table.addRow({r.name, format("%zu", r.bugsFound),
                      format("%zu", r.bugsFixed),
                      r.recheckClean ? "yes" : "NO",
                      r.aaModesAgree ? "yes" : "NO"});
        total_found += r.bugsFound;
        total_fixed += r.bugsFixed;
    }
    table.addRow({"Total", format("%zu", total_found),
                  format("%zu", total_fixed), "", ""});
    table.print();

    std::printf("\nPaper reference: 23/23 bugs fixed (11 PMDK, "
                "2 P-CLHT, 10 memcached-pm); both heuristics "
                "produced the same set of fixes on all systems.\n");

    auto &reg = support::MetricsRegistry::global();
    reg.counter("effectiveness.bugs_found").inc(total_found);
    reg.counter("effectiveness.bugs_fixed").inc(total_fixed);
    reg.counter("effectiveness.targets").inc(results.size());
    bench::finishBench(opt, "bench_effectiveness");
    return total_found == 23 && total_fixed == 23 ? 0 : 1;
}
