/**
 * @file
 * google-benchmark microbenchmarks for the individual substrates,
 * plus ablations of Hippocrates's phases (fix reduction on/off,
 * hoisting on/off) called out in DESIGN.md.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>

#include "apps/kv_driver.hh"
#include "apps/pmcache.hh"
#include "analysis/points_to.hh"
#include "bench_util.hh"
#include "core/fixer.hh"
#include "core/flush_cleaner.hh"
#include "ir/builder.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

namespace
{

using namespace hippo;

void
BM_PmPool_StoreFlushFence(benchmark::State &state)
{
    pmem::PmPool pool(1 << 20);
    uint64_t base = pool.mapRegion("r", 1 << 16);
    uint64_t v = 42;
    uint64_t off = 0;
    for (auto _ : state) {
        uint64_t addr = base + (off & 0xFFF8);
        pool.store(addr, reinterpret_cast<uint8_t *>(&v), 8);
        pool.flush(addr, pmem::FlushOp::Clwb);
        pool.fence();
        off += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmPool_StoreFlushFence);

/**
 * One exploration fork: snapshot the master pool, construct a fork
 * from it, crash the fork, and touch one line — the per-crash-point
 * cost of the snapshot replay engine (DESIGN.md "Snapshot replay
 * engine"). COW pages make this O(dirty lines), not O(pool bytes).
 */
void
BM_PmPool_SnapshotFork(benchmark::State &state)
{
    pmem::PmPool master(16u << 20);
    uint64_t base = master.mapRegion("r", 4u << 20);
    uint64_t v = 7;
    // A realistic master image: a few hundred persisted lines plus
    // some lines left dirty at the snapshot point.
    for (uint64_t off = 0; off < (256u << 10); off += 64) {
        master.store(base + off, reinterpret_cast<uint8_t *>(&v), 8);
        master.flush(base + off, pmem::FlushOp::Clwb);
    }
    master.fence();
    for (uint64_t off = 0; off < (16u << 10); off += 64)
        master.store(base + off, reinterpret_cast<uint8_t *>(&v), 8);

    for (auto _ : state) {
        pmem::PmPool::Snapshot snap = master.snapshot();
        pmem::PmPool fork(snap);
        fork.crash();
        fork.store(base, reinterpret_cast<uint8_t *>(&v), 8);
        benchmark::DoNotOptimize(fork.stats().stores);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmPool_SnapshotFork);

/** A tight PMIR countdown loop to measure interpreter dispatch. */
std::unique_ptr<ir::Module>
makeLoopModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("loop");
    Function *f = m->addFunction("spin", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(n, iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ugt, i, b.getInt(0)), body,
                   done);
    b.setInsertPoint(body);
    b.createStore(b.createSub(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(iv, 8));
    return m;
}

void
interpreterLoop(benchmark::State &state, vm::VmEngine engine)
{
    auto m = makeLoopModule();
    pmem::PmPool pool(1 << 16);
    vm::VmConfig vc;
    vc.engine = engine;
    vm::Vm machine(m.get(), &pool, vc);
    uint64_t n = state.range(0);
    for (auto _ : state)
        machine.run("spin", {n});
    state.SetItemsProcessed(state.iterations() * n * 5);
}

void
BM_Vm_InterpreterLoop(benchmark::State &state)
{
    interpreterLoop(state, vm::VmEngine::Tree);
}
BENCHMARK(BM_Vm_InterpreterLoop)->Arg(1000);

void
BM_Vm_InterpreterLoopBytecode(benchmark::State &state)
{
    interpreterLoop(state, vm::VmEngine::Bytecode);
}
BENCHMARK(BM_Vm_InterpreterLoopBytecode)->Arg(1000);

/** One traced memcached-pm run reused across detector iterations. */
const trace::Trace &
pmcacheTrace()
{
    static trace::Trace tr = [] {
        auto m = apps::buildPmcache({});
        pmem::PmPool pool(16u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(m.get(), &pool, vc);
        machine.run("mc_example", {32});
        return machine.trace();
    }();
    return tr;
}

void
BM_Detector_Analyze(benchmark::State &state)
{
    const trace::Trace &tr = pmcacheTrace();
    for (auto _ : state)
        benchmark::DoNotOptimize(pmcheck::analyze(tr));
    state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_Detector_Analyze);

void
BM_Trace_RoundTrip(benchmark::State &state)
{
    const trace::Trace &tr = pmcacheTrace();
    for (auto _ : state) {
        std::string text = tr.writeText();
        trace::Trace parsed;
        bool ok = trace::Trace::readText(text, parsed);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_Trace_RoundTrip);

void
BM_PointsTo_Solve(benchmark::State &state)
{
    auto m = apps::buildPmkv({});
    for (auto _ : state) {
        analysis::PointsTo pts(*m);
        benchmark::DoNotOptimize(pts.edgeCount());
    }
}
BENCHMARK(BM_PointsTo_Solve);

/**
 * All-pairs mayAlias over the module's pointer-valued instructions,
 * on a solved Andersen instance: exercises the sorted-vector
 * intersection path (linear merge, no per-query allocation).
 */
void
BM_PointsTo_MayAlias(benchmark::State &state)
{
    auto m = apps::buildPmkv({});
    analysis::PointsTo pts(*m);
    std::vector<const ir::Value *> ptrs;
    for (const auto &f : m->functions())
        for (const auto &bb : f->blocks())
            for (const auto &instr : *bb)
                if (instr->type() == ir::Type::Ptr)
                    ptrs.push_back(instr.get());
    for (auto _ : state) {
        uint64_t hits = 0;
        for (size_t i = 0; i < ptrs.size(); i++)
            for (size_t j = i + 1; j < ptrs.size(); j++)
                hits += pts.mayAlias(ptrs[i], ptrs[j]);
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations() * ptrs.size() *
                            (ptrs.size() - 1) / 2);
}
BENCHMARK(BM_PointsTo_MayAlias);

/** Full fixer pipeline with configurable phases (ablation). */
void
fixerAblation(benchmark::State &state, bool reduction, bool hoisting)
{
    // Build the trace once; rebuild the module every iteration since
    // the fixer mutates it.
    auto traced = apps::buildPmcache({});
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(traced.get(), &pool, vc);
    machine.run("mc_example", {32});
    auto report = pmcheck::analyze(machine.trace());

    size_t fixes = 0, fences = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto m = apps::buildPmcache({});
        state.ResumeTiming();
        core::FixerConfig cfg;
        cfg.enableReduction = reduction;
        cfg.enableHoisting = hoisting;
        core::Fixer fixer(m.get(), cfg);
        auto summary = fixer.fix(report, machine.trace(),
                                 &machine.dynPointsTo());
        fixes = summary.fixes.size();
        fences = summary.fencesInserted;
    }
    state.counters["fixes"] = (double)fixes;
    state.counters["fences"] = (double)fences;
}

void
BM_Fixer_Full(benchmark::State &state)
{
    fixerAblation(state, true, true);
}
BENCHMARK(BM_Fixer_Full);

void
BM_Fixer_NoReduction(benchmark::State &state)
{
    fixerAblation(state, false, true);
}
BENCHMARK(BM_Fixer_NoReduction);

void
BM_Fixer_IntraOnly(benchmark::State &state)
{
    fixerAblation(state, true, false);
}
BENCHMARK(BM_Fixer_IntraOnly);

void
BM_OnlineDetector_Feed(benchmark::State &state)
{
    const trace::Trace &tr = pmcacheTrace();
    for (auto _ : state) {
        pmcheck::OnlineDetector online;
        for (const auto &ev : tr.events())
            online.onEvent(ev);
        benchmark::DoNotOptimize(online.report().bugs.size());
    }
    state.SetItemsProcessed(state.iterations() * tr.size());
}
BENCHMARK(BM_OnlineDetector_Feed);

void
BM_FlushCleaner_Module(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        apps::PmcacheConfig cfg;
        cfg.seedBugs = false;
        auto m = apps::buildPmcache(cfg);
        state.ResumeTiming();
        auto stats = core::cleanRedundantFlushes(m.get());
        benchmark::DoNotOptimize(stats.flushesKept);
    }
}
BENCHMARK(BM_FlushCleaner_Module);

/**
 * ThreadPool dispatch cost, per-item path: one Batch publish per
 * parallelForEach call, workers index into a shared callable.
 * Baseline for BM_ThreadPool_SubmitAll.
 */
void
BM_ThreadPool_ParallelForEach(benchmark::State &state)
{
    support::ThreadPool pool(4);
    const uint64_t tasks = state.range(0);
    std::atomic<uint64_t> sink{0};
    for (auto _ : state) {
        pool.parallelForEach(0, tasks, [&](uint64_t i) {
            sink.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ThreadPool_ParallelForEach)->Arg(8)->Arg(64);

/**
 * ThreadPool dispatch cost, batch path: submitAll publishes a whole
 * task vector under one lock with one notify_all — the sharded-kv
 * drain dispatch (src/shard). The tasks themselves are near-empty,
 * so this measures handoff overhead, not work.
 */
void
BM_ThreadPool_SubmitAll(benchmark::State &state)
{
    support::ThreadPool pool(4);
    const uint64_t tasks = state.range(0);
    std::atomic<uint64_t> sink{0};
    std::vector<std::function<void()>> work;
    for (uint64_t i = 0; i < tasks; i++)
        work.push_back([&sink, i] {
            sink.fetch_add(i + 1, std::memory_order_relaxed);
        });
    for (auto _ : state)
        pool.submitAll(work);
    benchmark::DoNotOptimize(sink.load());
    state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_ThreadPool_SubmitAll)->Arg(8)->Arg(64);

void
BM_KvDriver_WorkloadA(benchmark::State &state)
{
    apps::PmkvConfig cfg;
    cfg.variant = apps::PmkvVariant::Manual;
    auto m = apps::buildPmkv(cfg);
    pmem::PmPool pool(64u << 20);
    apps::KvDriver driver(m.get(), &pool);
    driver.init();
    driver.run(ycsb::Workload::Load, 200, 200, 1);
    uint64_t seed = 2;
    for (auto _ : state) {
        auto res = driver.run(ycsb::Workload::A, 200, 100, seed++);
        benchmark::DoNotOptimize(res.ops);
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KvDriver_WorkloadA);

/**
 * One deterministic single-shot pipeline pass for the --stats
 * fingerprint: timed iteration counts are host-dependent, so the
 * stats document is built from this pass alone and written before
 * google-benchmark takes over.
 */
void
recordFingerprint()
{
    auto &reg = support::MetricsRegistry::global();

    auto traced = apps::buildPmcache({});
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(traced.get(), &pool, vc);
    machine.run("mc_example", {32});
    machine.exportMetrics(reg, "micro.vm");

    auto report = pmcheck::analyze(machine.trace());
    report.exportMetrics(reg, "micro.pmcheck");

    auto m = apps::buildPmcache({});
    core::Fixer fixer(m.get(), {});
    fixer.fix(report, machine.trace(), &machine.dynPointsTo())
        .exportMetrics(reg, "micro.fixer");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;

    // Split off --smoke / --stats; everything else goes through to
    // google-benchmark untouched.
    bench::BenchOptions opt;
    std::vector<char *> fwd = {argv[0]};
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--smoke")
            opt.smoke = true;
        else if (arg == "--stats" && i + 1 < argc)
            opt.statsPath = argv[++i];
        else
            fwd.push_back(argv[i]);
    }
    std::string min_time = "--benchmark_min_time=0.01";
    if (opt.smoke)
        fwd.push_back(min_time.data());

    if (!opt.statsPath.empty()) {
        recordFingerprint();
        bench::finishBench(opt, "bench_micro");
    }

    int fwd_argc = (int)fwd.size();
    benchmark::Initialize(&fwd_argc, fwd.data());
    if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
