/**
 * @file
 * Acceptance gates for sharded concurrent pmkv execution
 * (src/shard/): one fixed concurrent YCSB op stream (4 closed-loop
 * clients, splitmix64-derived per-client seeds) is pushed through
 * the shard router at every point of the shards {1,4,8} x jobs
 * {1,4} matrix, each leg on a fresh sharded store.
 *
 *  Gate 1 — aggregate deterministic op/step counters (source ops,
 *           routed sub-ops, per-op VM steps, summed per-op
 *           simulated nanos, scan hits) are byte-identical across
 *           every leg: whole-bucket routing means each op walks the
 *           same hash chain at any shard count, and per-shard
 *           queues drain on private VMs at any jobs count;
 *  Gate 2 — the merged recovery digest (total log-replay valid
 *           entries + a key-ordered fold of every key's value
 *           length) is byte-identical across all legs — recovery
 *           replays each shard's log independently and reaches the
 *           same logical store;
 *  Gate 3 — per-shard crash exploration (the existing explorer run
 *           once per shard over a synthesized @kv_exercise entry)
 *           produces consistent per-shard digests, and the merged
 *           digest matches between 1 shard and 4 shards.
 *
 * Wall-clock scaling (8 shards vs 1) is reported but NOT gated —
 * CI hosts may have fewer cores than shards; the deterministic
 * simulated-makespan speedup is reported alongside as the
 * scheduling-independent view of the same curve.
 *
 * Knobs: HIPPO_SHARDSCALE_RECORDS (default 600), _OPS (600),
 * _SCAN_OPS (100). --shards N / --jobs N append one informational
 * leg outside smoke mode.
 */

#include <cstdio>
#include <vector>

#include "apps/kv_driver.hh"
#include "bench_util.hh"
#include "ir/builder.hh"
#include "shard/shard.hh"
#include "support/logging.hh"
#include "ycsb/concurrent.hh"

namespace
{

using namespace hippo;

/** Fixed client count: the op stream must be identical in every
 *  leg, so this never varies with the shard count under test. */
constexpr unsigned kClients = 4;

/** Synthesize @kv_exercise for exploration (same shape as
 *  bench_flush_opt's): every pmkv write path, constant keys. */
void
addKvExercise(ir::Module *m)
{
    ir::Function *f = m->addFunction("kv_exercise", ir::Type::Int);
    ir::BasicBlock *bb = f->addBlock("entry");
    ir::IRBuilder b(m);
    b.setInsertPoint(bb);
    b.setLoc("bench_shard_scale.cc", 1);
    auto call = [&](const char *name,
                    std::vector<ir::Value *> args) {
        ir::Function *callee = m->findFunction(name);
        hippo_assert(callee, "pmkv entry missing");
        return b.createCall(callee, std::move(args));
    };
    call("kv_init", {});
    call("kv_handle_set", {b.getInt(3), b.getInt(24)});
    call("kv_handle_set", {b.getInt(7), b.getInt(40)});
    call("kv_handle_set", {b.getInt(11), b.getInt(24)});
    call("kv_handle_update", {b.getInt(7), b.getInt(24)});
    call("kv_handle_rmw", {b.getInt(3), b.getInt(24)});
    b.createRet(call("kv_recover", {}));
}

struct LegResult
{
    unsigned shards = 0, jobs = 0;
    shard::ShardRunStats stats; ///< load + A + E combined
    uint64_t digest = 0;
    double wallSeconds = 0;
};

LegResult
runLeg(ir::Module *m, unsigned shards, unsigned jobs,
       const ycsb::ConcurrentOps &load,
       const ycsb::ConcurrentOps &mix,
       const ycsb::ConcurrentOps &scans, uint64_t key_limit)
{
    shard::ShardConfig cfg;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.kv.variant = apps::PmkvVariant::Manual;
    shard::ShardedKv kv(m, cfg);
    kv.init();

    LegResult leg;
    leg.shards = shards;
    leg.jobs = jobs;
    for (const ycsb::ConcurrentOps *phase : {&load, &mix, &scans}) {
        auto s = kv.run(phase->ops);
        leg.stats.ops += s.ops;
        leg.stats.subOps += s.subOps;
        leg.stats.opSteps += s.opSteps;
        leg.stats.scanHits += s.scanHits;
        leg.stats.opSimNanos += s.opSimNanos;
        leg.stats.simSecondsMax += s.simSecondsMax;
        leg.stats.wallSeconds += s.wallSeconds;
    }
    leg.wallSeconds = leg.stats.wallSeconds;
    leg.digest = kv.mergedRecoveryDigest(key_limit);
    return leg;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Shard scaling — deterministic invariance gates "
                  "over shards x jobs");

    uint64_t records =
        bench::knob(opt, "HIPPO_SHARDSCALE_RECORDS", 600, 96);
    uint64_t ops = bench::knob(opt, "HIPPO_SHARDSCALE_OPS", 600, 96);
    uint64_t scan_ops =
        bench::knob(opt, "HIPPO_SHARDSCALE_SCAN_OPS", 100, 24);
    std::printf("records=%llu ops=%llu scan_ops=%llu clients=%u\n",
                (unsigned long long)records, (unsigned long long)ops,
                (unsigned long long)scan_ops, kClients);

    // One op stream for every leg: Load, then an A mix, then an E
    // slice (scan-heavy, exercising router Scan decomposition).
    auto load = ycsb::buildLoadOps(records, kClients);
    ycsb::ConcurrentSpec mix_spec;
    mix_spec.workload = ycsb::Workload::A;
    mix_spec.recordCount = records;
    mix_spec.opCount = ops;
    mix_spec.clients = kClients;
    mix_spec.seed = 99991;
    auto mix = ycsb::buildConcurrentOps(mix_spec);
    ycsb::ConcurrentSpec scan_spec = mix_spec;
    scan_spec.workload = ycsb::Workload::E;
    scan_spec.opCount = scan_ops;
    scan_spec.seed = 99993;
    auto scans = ycsb::buildConcurrentOps(scan_spec);
    uint64_t key_limit =
        std::max(mix.keySpace, scans.keySpace);

    apps::PmkvConfig kcfg;
    kcfg.variant = apps::PmkvVariant::Manual;
    auto m = apps::buildPmkv(kcfg);

    std::vector<std::pair<unsigned, unsigned>> legs;
    for (unsigned shards : {1u, 4u, 8u})
        for (unsigned jobs : {1u, 4u})
            legs.push_back({shards, jobs});
    if (!opt.smoke && opt.shards)
        legs.push_back({opt.shards, opt.jobs ? opt.jobs : 1});

    bench::Table table({"shards", "jobs", "ops", "sub-ops",
                        "op steps", "scan hits", "digest",
                        "sim ops/s", "wall"});
    std::vector<LegResult> results;
    for (auto [shards, jobs] : legs) {
        LegResult leg = runLeg(m.get(), shards, jobs, load, mix,
                               scans, key_limit);
        table.addRow(
            {format("%u", leg.shards), format("%u", leg.jobs),
             format("%llu", (unsigned long long)leg.stats.ops),
             format("%llu", (unsigned long long)leg.stats.subOps),
             format("%llu", (unsigned long long)leg.stats.opSteps),
             format("%llu", (unsigned long long)leg.stats.scanHits),
             format("%016llx", (unsigned long long)leg.digest),
             format("%.0f", leg.stats.throughput()),
             format("%.4fs", leg.wallSeconds)});
        results.push_back(leg);
    }
    table.print();

    // ---- Gate 1: aggregate op/step counters invariant. Integer
    // counters only: the float sim-nanos sum can drift in the last
    // ulp across summation orders, so it is reported, not gated.
    const LegResult &ref = results[0];
    bool counters_ok = true;
    for (const LegResult &r : results) {
        counters_ok &= r.stats.ops == ref.stats.ops &&
                       r.stats.subOps == ref.stats.subOps &&
                       r.stats.opSteps == ref.stats.opSteps &&
                       r.stats.scanHits == ref.stats.scanHits;
    }
    std::printf("\ngate 1: op/step counters identical across "
                "%zu legs ... %s\n",
                results.size(), counters_ok ? "PASS" : "FAIL");

    // ---- Gate 2: merged recovery digests invariant.
    bool digest_ok = true;
    for (const LegResult &r : results)
        digest_ok &= r.digest == ref.digest;
    std::printf("gate 2: merged recovery digest identical ... %s\n",
                digest_ok ? "PASS" : "FAIL");

    // ---- Gate 3: per-shard exploration digests consistent and
    // invariant between 1 and 4 shards.
    addKvExercise(m.get());
    pmcheck::CrashExplorerConfig xc;
    xc.entry = "kv_exercise";
    xc.recovery = "kv_recover";
    xc.maxCrashes = 1u << 20;
    xc.poolBytes = 32u << 20;
    xc.vmEngine = vm::VmEngine::Bytecode;
    auto x1 = shard::exploreShards(m.get(), xc, 1);
    auto x4 = shard::exploreShards(m.get(), xc, 4);
    bool explore_ok = x1.consistent && x4.consistent &&
                      x1.digest == x4.digest &&
                      x1.unverified == 0 && x4.unverified == 0;
    std::printf("gate 3: per-shard exploration digests "
                "(1 vs 4 shards: %016llx vs %016llx) ... %s\n",
                (unsigned long long)x1.digest,
                (unsigned long long)x4.digest,
                explore_ok ? "PASS" : "FAIL");

    // ---- Informational: wall-clock and simulated-makespan scaling
    // (8 shards, jobs=4 vs 1 shard, jobs=1). Never gated: wall
    // clock depends on host cores (the ISSUE's >= 3x target assumes
    // >= 8 hardware threads); the simulated makespan is the
    // deterministic view of the same parallelism.
    const LegResult *serial = &results[0]; // shards=1 jobs=1
    const LegResult *wide = nullptr;       // shards=8 jobs=4
    for (const LegResult &r : results)
        if (r.shards == 8 && r.jobs == 4)
            wide = &r;
    double wall_speedup =
        wide && wide->wallSeconds > 0
            ? serial->wallSeconds / wide->wallSeconds
            : 0;
    double sim_speedup =
        wide && wide->stats.simSecondsMax > 0
            ? serial->stats.simSecondsMax / wide->stats.simSecondsMax
            : 0;
    std::printf("\nscaling 8 shards/4 jobs vs 1/1: wall %.2fx "
                "(informational; %u hardware threads), simulated "
                "makespan %.2fx\n",
                wall_speedup, support::hardwareConcurrency(),
                sim_speedup);
    if (support::hardwareConcurrency() < 8)
        std::printf("note: host has < 8 hardware threads; the "
                    ">= 3x wall-clock target needs >= 8\n");

    auto &reg = support::MetricsRegistry::global();
    reg.counter("shardscale.legs").inc(results.size());
    reg.counter("shardscale.ops").inc(ref.stats.ops);
    reg.counter("shardscale.subops").inc(ref.stats.subOps);
    reg.counter("shardscale.op_steps").inc(ref.stats.opSteps);
    reg.counter("shardscale.scan_hits").inc(ref.stats.scanHits);
    reg.doubleSum("shardscale.op_sim_ns").add(ref.stats.opSimNanos);
    reg.counter("shardscale.counters_invariant").inc(counters_ok);
    reg.counter("shardscale.digest_invariant").inc(digest_ok);
    reg.counter("shardscale.explore_consistent").inc(explore_ok);
    reg.counter("shardscale.explore_unverified")
        .inc(x1.unverified + x4.unverified);
    // Deterministic scaling curve in hundredths; wall clock stays
    // out of the comparable tree (host-dependent).
    reg.counter("shardscale.sim_speedup_x100")
        .inc((uint64_t)(sim_speedup * 100));
    reg.gauge("shardscale.wall_speedup").set(wall_speedup);
    bench::finishBench(opt, "bench_shard_scale");

    if (!counters_ok || !digest_ok || !explore_ok) {
        std::printf("FAIL\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
