/**
 * @file
 * Tree-walker vs. bytecode fast-path dispatch gate: run a set of
 * interpreter-bound PMIR workloads (a countdown spin loop, a PM
 * append loop built around the store->flush->fence superinstruction,
 * a gep/load pointer walk, and a YCSB pmkv slice) under both engines
 * and compare.
 *
 * Gates (deterministic, counter-based — wall time is reported but
 * never enforced, so loaded CI hosts behave):
 *   - every workload's RunResult must be byte-identical across the
 *     engines (return value, step count, bit-exact simulated time);
 *   - crash-exploration recovery digests over a pmlog workload must
 *     match across engines at jobs = 1 and jobs = 4;
 *   - the aggregate dispatch-work ratio must be >= 5x. The tree
 *     walker pays three map/list touches per executed instruction
 *     (frame lookup, opcode census, iterator advance) plus one
 *     recursive eval() per operand; the fast path pays one dispatch
 *     per bytecode instruction, and superinstructions retire several
 *     IR steps per dispatch. Both sides are measured from the vm.*
 *     census counters (tree: 3*steps + operand evals; fast:
 *     dispatches), which depend only on the module and inputs.
 *
 * Knobs: HIPPO_VMD_SPIN / _APPEND / _CHASE (loop trip counts),
 *        HIPPO_VMD_KV_OPS (YCSB ops), HIPPO_VMD_XAPPENDS (explorer
 *        workload size).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/kv_driver.hh"
#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "ir/builder.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmem/pm_pool.hh"
#include "support/stopwatch.hh"
#include "vm/vm.hh"

namespace
{

using namespace hippo;

/** A tight countdown loop: pure branch/ALU dispatch. */
std::unique_ptr<ir::Module>
makeSpinModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("spin");
    Function *f = m->addFunction("spin", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(n, iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ugt, i, b.getInt(0)), body,
                   done);
    b.setInsertPoint(body);
    b.createStore(b.createSub(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(iv, 8));
    return m;
}

/** A PM append loop: store->flush->fence per element, the exact
 *  shape the store/flush/fence superinstruction targets. */
std::unique_ptr<ir::Module>
makeAppendModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("append");
    Function *f = m->addFunction("append", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    b.createStore(b.getInt(0), iv, 8);
    Instruction *pm = b.createPmMap("r", 1u << 20);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, n), body, done);
    b.setInsertPoint(body);
    Instruction *p = b.createGep(pm, b.createMul(i, b.getInt(8)));
    b.createStore(i, p, 8);
    b.createFlush(p, FlushKind::Clwb);
    b.createFence(FenceKind::Sfence);
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(iv, 8));
    return m;
}

/** Fill a PM array (gep+store), then walk it summing (gep+load). */
std::unique_ptr<ir::Module>
makeChaseModule()
{
    using namespace hippo::ir;
    auto m = std::make_unique<Module>("chase");
    Function *f = m->addFunction("chase", Type::Int);
    Argument *n = f->addParam(Type::Int, "n");
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *fill = f->addBlock("fill");
    BasicBlock *fbody = f->addBlock("fbody");
    BasicBlock *mid = f->addBlock("mid");
    BasicBlock *walk = f->addBlock("walk");
    BasicBlock *wbody = f->addBlock("wbody");
    BasicBlock *done = f->addBlock("done");
    IRBuilder b(m.get());
    b.setInsertPoint(entry);
    Instruction *iv = b.createAlloca(8);
    Instruction *sum = b.createAlloca(8);
    b.createStore(b.getInt(0), iv, 8);
    b.createStore(b.getInt(0), sum, 8);
    Instruction *pm = b.createPmMap("r", 1u << 20);
    b.createBr(fill);
    b.setInsertPoint(fill);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, n), fbody, mid);
    b.setInsertPoint(fbody);
    b.createStore(b.createMul(i, b.getInt(3)),
                  b.createGep(pm, b.createMul(i, b.getInt(8))), 8);
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(fill);
    b.setInsertPoint(mid);
    b.createStore(b.getInt(0), iv, 8);
    b.createBr(walk);
    b.setInsertPoint(walk);
    Instruction *j = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, j, n), wbody, done);
    b.setInsertPoint(wbody);
    Instruction *v =
        b.createLoad(b.createGep(pm, b.createMul(j, b.getInt(8))), 8);
    b.createStore(b.createAdd(b.createLoad(sum, 8), v), sum, 8);
    b.createStore(b.createAdd(j, b.getInt(1)), iv, 8);
    b.createBr(walk);
    b.setInsertPoint(done);
    b.createRet(b.createLoad(sum, 8));
    return m;
}

/** One engine leg over one workload, on a fresh Vm + pool. */
struct Leg
{
    vm::RunResult res;
    uint64_t units = 0;   ///< dispatch work (see file comment)
    uint64_t super = 0;   ///< superinstructions retired (fast only)
    double seconds = 0;
};

Leg
runLeg(ir::Module *m, const char *entry, uint64_t n,
       vm::VmEngine engine)
{
    pmem::PmPool pool(4u << 20);
    vm::VmConfig vc;
    vc.engine = engine;
    vm::Vm machine(m, &pool, vc);
    Leg leg;
    Stopwatch watch;
    leg.res = machine.run(entry, {n});
    leg.seconds = watch.elapsedSeconds();
    leg.units = engine == vm::VmEngine::Tree
                    ? 3 * machine.steps() + machine.treeOperandEvals()
                    : machine.fastDispatches();
    leg.super = machine.fastSuperExecuted();
    return leg;
}

bool
sameRun(const vm::RunResult &a, const vm::RunResult &b)
{
    return a.crashed == b.crashed && a.returnValue == b.returnValue &&
           a.steps == b.steps && a.simNanos == b.simNanos &&
           a.outcome == b.outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("VM dispatch — tree-walking oracle vs. bytecode "
                  "fast path");

    struct Workload
    {
        const char *name;
        std::unique_ptr<ir::Module> module;
        const char *entry;
        uint64_t n;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"spin", makeSpinModule(), "spin",
                         bench::knob(opt, "HIPPO_VMD_SPIN", 20000,
                                     2000)});
    workloads.push_back({"pm-append", makeAppendModule(), "append",
                         bench::knob(opt, "HIPPO_VMD_APPEND", 4096,
                                     512)});
    workloads.push_back({"gep-chase", makeChaseModule(), "chase",
                         bench::knob(opt, "HIPPO_VMD_CHASE", 4096,
                                     512)});

    bool identical = true;
    uint64_t treeUnits = 0, fastUnits = 0, superExec = 0;

    bench::Table table({"workload", "tree units", "fast units",
                        "ratio", "super", "tree wall", "fast wall",
                        "identical"});

    for (auto &w : workloads) {
        // Untimed warm-up (also pre-compiles the bytecode program).
        runLeg(w.module.get(), w.entry, 8, vm::VmEngine::Tree);
        runLeg(w.module.get(), w.entry, 8, vm::VmEngine::Bytecode);

        Leg tree = runLeg(w.module.get(), w.entry, w.n,
                          vm::VmEngine::Tree);
        Leg fast = runLeg(w.module.get(), w.entry, w.n,
                          vm::VmEngine::Bytecode);
        bool same = sameRun(tree.res, fast.res);
        identical &= same;
        treeUnits += tree.units;
        fastUnits += fast.units;
        superExec += fast.super;
        table.addRow(
            {w.name, format("%llu", (unsigned long long)tree.units),
             format("%llu", (unsigned long long)fast.units),
             format("%.2fx", (double)tree.units / fast.units),
             format("%llu", (unsigned long long)fast.super),
             format("%.4fs", tree.seconds),
             format("%.4fs", fast.seconds), same ? "yes" : "NO"});
    }

    // YCSB pmkv slice: the KvDriver rides VmConfig, so the engine
    // knob reaches it unchanged. Simulated time must match bit for
    // bit; dispatch units come from the driver's Vm census.
    {
        uint64_t records =
            bench::knob(opt, "HIPPO_VMD_KV_OPS", 200, 64);
        apps::PmkvConfig kcfg;
        kcfg.variant = apps::PmkvVariant::Manual;
        auto m = apps::buildPmkv(kcfg);
        // Shared hot-path construction (bench::runKvHotPath), so
        // this leg measures the same op stream as the fig4 and
        // flush-opt KV legs.
        auto tree = bench::runKvHotPath(m.get(), ycsb::Workload::A,
                                        records, records, 1, 2,
                                        vm::VmEngine::Tree);
        auto fast = bench::runKvHotPath(m.get(), ycsb::Workload::A,
                                        records, records, 1, 2,
                                        vm::VmEngine::Bytecode);
        bool same =
            tree.workload.ops == fast.workload.ops &&
            tree.workload.simSeconds == fast.workload.simSeconds;
        identical &= same;
        uint64_t tu = tree.dispatchUnits(vm::VmEngine::Tree);
        uint64_t fu = fast.dispatchUnits(vm::VmEngine::Bytecode);
        treeUnits += tu;
        fastUnits += fu;
        superExec += fast.fastSuper;
        table.addRow({"ycsb-a", format("%llu", (unsigned long long)tu),
                      format("%llu", (unsigned long long)fu),
                      format("%.2fx", (double)tu / fu),
                      format("%llu",
                             (unsigned long long)fast.fastSuper),
                      format("%.4fs", tree.wallSeconds),
                      format("%.4fs", fast.wallSeconds),
                      same ? "yes" : "NO"});
    }
    table.print();

    // Differential exploration leg: recovery digests over a pmlog
    // workload must match across engines and jobs settings.
    bool digestMatch = true;
    {
        apps::PmlogConfig lc;
        lc.seedBugs = false;
        lc.capacity = 1u << 20;
        auto m = apps::buildPmlog(lc);
        pmcheck::CrashExplorerConfig xc;
        xc.entry = "log_example";
        xc.entryArgs = {
            bench::knob(opt, "HIPPO_VMD_XAPPENDS", 48, 16)};
        xc.recovery = "log_walk";
        xc.stepStride = 64;
        xc.maxCrashes = 1u << 20;
        uint64_t ref = 0;
        bool first = true;
        for (auto engine :
             {vm::VmEngine::Tree, vm::VmEngine::Bytecode}) {
            for (unsigned jobs : {1u, 4u}) {
                xc.vmEngine = engine;
                xc.jobs = jobs;
                uint64_t digest = pmcheck::recoveryDigest(
                    pmcheck::exploreCrashes(m.get(), xc));
                if (first) {
                    ref = digest;
                    first = false;
                } else if (digest != ref) {
                    digestMatch = false;
                }
            }
        }
        std::printf("\nexplorer digest (pmlog, engines x jobs "
                    "{1,4}): %s\n",
                    digestMatch ? "all identical" : "DIVERGED");
    }

    double ratio = (double)treeUnits / (double)fastUnits;
    std::printf("\naggregate: tree %llu units, fast %llu units "
                "(%.2fx), %llu superinstructions retired\n",
                (unsigned long long)treeUnits,
                (unsigned long long)fastUnits, ratio,
                (unsigned long long)superExec);

    auto &reg = support::MetricsRegistry::global();
    reg.counter("vmdispatch.workloads").inc(workloads.size() + 1);
    reg.counter("vmdispatch.identical").inc(identical);
    reg.counter("vmdispatch.digest_match").inc(digestMatch);
    reg.counter("vmdispatch.tree_units").inc(treeUnits);
    reg.counter("vmdispatch.fast_units").inc(fastUnits);
    reg.counter("vmdispatch.super_executed").inc(superExec);
    // Aggregate dispatch-work ratio in hundredths (e.g. 523 =
    // 5.23x), so regressions show up in --stats.
    reg.counter("vmdispatch.ratio_x100").inc((uint64_t)(ratio * 100));
    bench::finishBench(opt, "bench_vm_dispatch");

    if (!identical) {
        std::printf("FAIL: engines disagreed on a RunResult\n");
        return 1;
    }
    if (!digestMatch) {
        std::printf("FAIL: recovery digests diverged across "
                    "engine/jobs\n");
        return 1;
    }
    if (ratio < 5.0) {
        std::printf("FAIL: dispatch-work reduction %.2fx < 5x\n",
                    ratio);
        return 1;
    }
    return 0;
}
