/**
 * @file
 * Acceptance gates for the global flush/fence optimizer
 * (core/flush_optimizer.hh), the "do no harm" inverse of the fixer:
 *
 *  Gate 1 — the optimizer removes at least 20% of the dynamically
 *           executed flushes on the pmkv YCSB hot path (Load + A),
 *           naive fix vs optimized fix, without losing throughput;
 *  Gate 2 — crash-exploration recovery digests of the naive and the
 *           optimized pmkv are byte-identical at every engine
 *           (Legacy, Snapshot) x jobs (1, 4) setting, and the static
 *           flush count never grows;
 *  Gate 3 — optimizeAndVerify keeps (does not revert) the optimized
 *           module on every repaired app — pmlog, pclht, pmcache,
 *           pmkv — i.e. zero new pmcheck bugs, zero new static
 *           checker candidates, unchanged recovery digests.
 *
 * Gate 2 drives exploration through a synthesized @kv_exercise entry
 * (kv_init + a short set/update/rmw sequence with constant keys) so
 * both modules walk the same durability points; recovery is
 * @kv_recover.
 *
 * Knobs: HIPPO_FLUSHOPT_RECORDS (default 800), HIPPO_FLUSHOPT_OPS
 * (800).
 */

#include <cstdio>
#include <vector>

#include "apps/kv_driver.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "ir/builder.hh"
#include "ir/instruction.hh"
#include "ir/module.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/logging.hh"

namespace
{

using namespace hippo;

size_t
countFlushes(const ir::Module &m)
{
    size_t n = 0;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &in : *bb)
                n += in->op() == ir::Opcode::Flush;
    return n;
}

/**
 * Synthesize @kv_exercise: a parameterless workload entry that walks
 * every pmkv write path with constant keys, so crash exploration has
 * a deterministic durpoint schedule. Identical in both modules —
 * it is appended after repair/optimization and only contains calls,
 * which every optimizer pass treats as a barrier.
 */
void
addKvExercise(ir::Module *m)
{
    ir::Function *f = m->addFunction("kv_exercise", ir::Type::Int);
    ir::BasicBlock *bb = f->addBlock("entry");
    ir::IRBuilder b(m);
    b.setInsertPoint(bb);
    b.setLoc("bench_flush_opt.cc", 1);
    auto call = [&](const char *name,
                    std::vector<ir::Value *> args) {
        ir::Function *callee = m->findFunction(name);
        hippo_assert(callee, "pmkv entry missing");
        return b.createCall(callee, std::move(args));
    };
    call("kv_init", {});
    call("kv_handle_set", {b.getInt(3), b.getInt(24)});
    call("kv_handle_set", {b.getInt(7), b.getInt(40)});
    call("kv_handle_set", {b.getInt(11), b.getInt(24)});
    call("kv_handle_update", {b.getInt(7), b.getInt(24)});
    call("kv_handle_rmw", {b.getInt(3), b.getInt(24)});
    b.createRet(call("kv_recover", {}));
}

/** The YCSB hot path, shared with bench_fig4/bench_vm_dispatch
 *  (bench::runKvHotPath) so all the benches gate one op stream. */
bench::KvHotPathCounts
hotPathCounts(ir::Module *m, uint64_t records, uint64_t ops)
{
    return bench::runKvHotPath(m, ycsb::Workload::A, records, ops,
                               424243, 424247, vm::VmEngine::Auto,
                               32u << 20);
}

/** Repair one app exactly like the hippoc pipeline (trace -> detect
 *  -> fix with the full heuristic), then run the checked optimizer
 *  stage over it. */
core::FlushOptOutcome
repairAndOptimize(std::unique_ptr<ir::Module> m,
                  const std::string &entry, uint64_t arg,
                  const std::string &recovery)
{
    pmem::PmPool pool(16u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run(entry, {arg});
    auto report = pmcheck::analyze(machine.trace());

    core::FixerConfig fc;
    fc.enableHoisting = true;
    core::Fixer fixer(m.get(), fc);
    fixer.fix(report, machine.trace(), &machine.dynPointsTo());

    core::FlushOptVerifyConfig cfg;
    cfg.entry = entry;
    cfg.entryArgs = {arg};
    cfg.recovery = recovery;
    return core::optimizeAndVerify(m, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Flush/fence optimizer acceptance gates");

    uint64_t records =
        bench::knob(opt, "HIPPO_FLUSHOPT_RECORDS", 800, 96);
    uint64_t ops = bench::knob(opt, "HIPPO_FLUSHOPT_OPS", 800, 96);
    auto &reg = support::MetricsRegistry::global();

    // ---- Gate 1: >= 20% executed-flush cut on the YCSB hot path.
    auto variants = apps::buildRedisVariants(
        {}, analysis::AaMode::FullAA, /*optimized=*/true);
    std::printf("optimizer: %s\n", variants.optStats.str().c_str());

    auto naive = hotPathCounts(variants.hippoFull.get(), records, ops);
    auto optd = hotPathCounts(variants.hippoOpt.get(), records, ops);
    double cut =
        naive.flushes
            ? 100.0 * (double)(naive.flushes - optd.flushes) /
                  (double)naive.flushes
            : 0;
    bool gate1 = cut >= 20.0;
    std::printf("gate 1: naive %llu flushes / optimized %llu "
                "(cut %.1f%%, need >= 20%%) ... %s\n",
                (unsigned long long)naive.flushes,
                (unsigned long long)optd.flushes, cut,
                gate1 ? "PASS" : "FAIL");
    reg.counter("flushopt.dyn_flushes_naive").inc(naive.flushes);
    reg.counter("flushopt.dyn_flushes_optimized").inc(optd.flushes);
    reg.counter("flushopt.dyn_fences_naive").inc(naive.fences);
    reg.counter("flushopt.dyn_fences_optimized").inc(optd.fences);
    reg.doubleSum("flushopt.cut_pct").add(cut);

    // ---- Gate 2: recovery digests identical across engine x jobs,
    // static flush count monotone.
    addKvExercise(variants.hippoFull.get());
    addKvExercise(variants.hippoOpt.get());
    size_t static_naive = countFlushes(*variants.hippoFull);
    size_t static_opt = countFlushes(*variants.hippoOpt);
    bool monotone = static_opt <= static_naive;

    struct Leg
    {
        const char *name;
        pmcheck::ExploreEngine engine;
        unsigned jobs;
    };
    const Leg legs[] = {
        {"legacy/1", pmcheck::ExploreEngine::Legacy, 1},
        {"legacy/4", pmcheck::ExploreEngine::Legacy, 4},
        {"snapshot/1", pmcheck::ExploreEngine::Snapshot, 1},
        {"snapshot/4", pmcheck::ExploreEngine::Snapshot, 4},
    };
    bool gate2 = monotone;
    bench::Table table(
        {"engine/jobs", "naive digest", "optimized digest", "equal"});
    for (const Leg &leg : legs) {
        pmcheck::CrashExplorerConfig cc;
        cc.entry = "kv_exercise";
        cc.recovery = "kv_recover";
        cc.engine = leg.engine;
        cc.jobs = leg.jobs;
        uint64_t dn = pmcheck::recoveryDigest(
            pmcheck::exploreCrashes(variants.hippoFull.get(), cc));
        uint64_t dopt = pmcheck::recoveryDigest(
            pmcheck::exploreCrashes(variants.hippoOpt.get(), cc));
        bool eq = dn == dopt;
        gate2 &= eq;
        table.addRow({leg.name,
                      format("%016llx", (unsigned long long)dn),
                      format("%016llx", (unsigned long long)dopt),
                      eq ? "yes" : "NO"});
    }
    table.print();
    std::printf("gate 2: static flushes %zu -> %zu (monotone: %s); "
                "digests ... %s\n",
                static_naive, static_opt, monotone ? "yes" : "NO",
                gate2 ? "PASS" : "FAIL");
    reg.counter("flushopt.static_flushes_naive").inc(static_naive);
    reg.counter("flushopt.static_flushes_optimized").inc(static_opt);

    // ---- Gate 3: the checked stage keeps every repaired app.
    bench::banner("Gate 3 — optimizeAndVerify over the repaired apps");
    struct AppGate
    {
        const char *name;
        core::FlushOptOutcome out;
    };
    std::vector<AppGate> apps_run;
    apps_run.push_back(
        {"pmlog", repairAndOptimize(apps::buildPmlog({}),
                                    "log_example", 8, "log_walk")});
    apps_run.push_back({"pclht", repairAndOptimize(
                                     apps::buildPclht({}),
                                     "clht_example", 12,
                                     "clht_recover")});
    apps_run.push_back({"pmcache", repairAndOptimize(
                                       apps::buildPmcache({}),
                                       "mc_example", 24,
                                       "mc_recover")});
    {
        // pmkv was repaired above; run the checked stage on the
        // naive module (with @kv_exercise as the workload).
        core::FlushOptVerifyConfig cfg;
        cfg.entry = "kv_exercise";
        cfg.recovery = "kv_recover";
        apps_run.push_back(
            {"pmkv", core::optimizeAndVerify(variants.hippoFull, cfg)});
    }

    bool gate3 = true;
    size_t kept = 0;
    for (const AppGate &a : apps_run) {
        bool ok = !a.out.reverted && a.out.verified;
        gate3 &= ok;
        kept += ok;
        std::printf("%-8s: %s ... %s%s%s\n", a.name,
                    a.out.stats.str().c_str(), ok ? "kept" : "REVERTED",
                    a.out.failReason.empty() ? "" : " — ",
                    a.out.failReason.c_str());
        reg.counter("flushopt.apps_kept").inc(ok);
        reg.counter(std::string("flushopt.") + a.name + ".removed")
            .inc(a.out.stats.flushesRemoved());
    }
    std::printf("gate 3: %zu/%zu apps kept ... %s\n", kept,
                apps_run.size(), gate3 ? "PASS" : "FAIL");

    std::printf("\nsummary: gate1=%s gate2=%s gate3=%s\n",
                gate1 ? "pass" : "fail", gate2 ? "pass" : "fail",
                gate3 ? "pass" : "fail");
    bench::finishBench(opt, "bench_flush_opt");
    return gate1 && gate2 && gate3 ? 0 : 1;
}
