/**
 * @file
 * Serial-vs-parallel crash exploration: replays one pmlog workload
 * once per crash point (durpoints + a step stride, >= 64 points) at
 * jobs = 1, 2, 4 and one-per-hardware-thread, reporting wall time
 * and speedup. The parallel engine must return a byte-identical
 * ExplorationResult at every jobs setting — the bench hard-fails on
 * any divergence, and fails on < 2x speedup at jobs=4 when the host
 * actually has >= 4 hardware threads (on smaller hosts the speedup
 * is reported but not enforced).
 *
 * Knobs: HIPPO_PAR_APPENDS (workload size, default 64),
 *        HIPPO_PAR_STRIDE (step-crash stride, default 64).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Parallel crash exploration — serial vs. "
                  "work-queue engine");

    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 1u << 20;
    auto m = apps::buildPmlog(lc);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {bench::knob(opt, "HIPPO_PAR_APPENDS", 64, 64)};
    xc.recovery = "log_walk";
    xc.stepStride = bench::knob(opt, "HIPPO_PAR_STRIDE", 64, 64);
    xc.maxCrashes = 1u << 20;

    // Untimed warm-up so the jobs=1 baseline doesn't absorb the
    // one-time allocator/page-fault costs.
    {
        auto warm = xc;
        warm.maxCrashes = 16;
        warm.jobs = 1;
        pmcheck::exploreCrashes(m.get(), warm);
    }

    unsigned hw = support::hardwareConcurrency();
    std::vector<unsigned> jobList = {1, 2, 4};
    // In smoke mode the jobs list stays fixed so the exploration
    // counters don't depend on the host's hardware-thread count.
    if (!opt.smoke &&
        std::find(jobList.begin(), jobList.end(), hw) ==
            jobList.end())
        jobList.push_back(hw);

    double serialSeconds = 0;
    double speedupAt4 = 0;
    pmcheck::ExplorationResult baseline;
    bool identical = true;

    bench::Table table({"jobs", "crash points", "wall time",
                        "speedup", "identical to jobs=1"});
    for (unsigned jobs : jobList) {
        xc.jobs = jobs;
        Stopwatch watch;
        auto res = pmcheck::exploreCrashes(m.get(), xc);
        double seconds = watch.elapsedSeconds();

        bool same = true;
        if (jobs == 1) {
            serialSeconds = seconds;
            baseline = res;
        } else {
            same = res == baseline;
            identical &= same;
        }
        double speedup = serialSeconds / seconds;
        if (jobs == 4)
            speedupAt4 = speedup;
        table.addRow({format("%u%s", jobs,
                             jobs == hw ? " (hw)" : ""),
                      format("%zu", res.outcomes.size()),
                      format("%.3fs", seconds),
                      format("%.2fx", speedup),
                      jobs == 1 ? "-" : (same ? "yes" : "NO")});
    }
    table.print();

    std::printf("\n%zu crash points, each replaying the %llu-append "
                "workload on a private Vm + PmPool; outcomes merge "
                "in crash-plan order.\n",
                baseline.outcomes.size(),
                (unsigned long long)xc.entryArgs[0]);

    auto &reg = support::MetricsRegistry::global();
    reg.counter("parallel.crash_points").inc(baseline.outcomes.size());
    reg.counter("parallel.jobs_settings").inc(jobList.size());
    reg.counter("parallel.identical").inc(identical);
    bench::finishBench(opt, "bench_parallel_explore");

    if (!identical) {
        std::printf("FAIL: parallel result diverged from serial\n");
        return 1;
    }
    if (baseline.outcomes.size() < 64) {
        std::printf("FAIL: fewer than 64 crash points explored\n");
        return 1;
    }
    if (hw >= 4 && speedupAt4 < 2.0) {
        std::printf("FAIL: jobs=4 speedup %.2fx < 2x on a %u-thread "
                    "host\n",
                    speedupAt4, hw);
        return 1;
    }
    if (hw < 4)
        std::printf("note: host has %u hardware thread(s); the 2x "
                    "jobs=4 gate needs >= 4 and was not enforced.\n",
                    hw);
    return 0;
}
