/**
 * @file
 * Legacy-vs-snapshot crash exploration: explores one pmlog workload
 * (durpoints + a step stride, >= 64 crash points) with the legacy
 * per-replay engine at jobs = 1, then with the snapshot engine at
 * jobs = 1, 2, 4 and one-per-hardware-thread, in both eviction modes
 * (fork replay at evictChance = 0, op-log replay at 0.01).
 *
 * Gates (deterministic, counter-based — wall time is reported but
 * never enforced, so single-core CI hosts behave):
 *   - every engine/jobs/eviction combination must return a result
 *     byte-identical to the legacy jobs=1 reference;
 *   - the snapshot engine must execute >= 5x fewer total VM steps
 *     than the legacy engine, measured from the explorer.* step
 *     counters (profile + replay + recovery);
 *   - >= 64 crash points must be explored.
 *
 * Knobs: HIPPO_PAR_APPENDS (workload size, default 64),
 *        HIPPO_PAR_STRIDE (step-crash stride, default 64).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"

namespace
{

/** Total VM steps a run executed, from the explorer counters. */
struct StepCensus
{
    uint64_t profile = 0;  ///< master / profiling run steps
    uint64_t replay = 0;   ///< per-crash-point entry re-execution
    uint64_t recovery = 0; ///< recovery program steps
    uint64_t saved = 0;    ///< entry steps the engine did NOT run

    uint64_t executed() const { return profile + replay + recovery; }
};

StepCensus
counterBaseline()
{
    auto &reg = hippo::support::MetricsRegistry::global();
    StepCensus c;
    c.profile = reg.counter("explorer.profile.steps").value();
    c.replay = reg.counter("explorer.replay.steps_executed").value();
    c.recovery = reg.counter("explorer.recovery.steps").value();
    c.saved = reg.counter("explorer.replay.steps_saved").value();
    return c;
}

StepCensus
counterDelta(const StepCensus &before)
{
    StepCensus now = counterBaseline();
    return {now.profile - before.profile, now.replay - before.replay,
            now.recovery - before.recovery, now.saved - before.saved};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Crash exploration — legacy per-replay vs. "
                  "snapshot engine");

    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 1u << 20;
    auto m = apps::buildPmlog(lc);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {bench::knob(opt, "HIPPO_PAR_APPENDS", 64, 64)};
    xc.recovery = "log_walk";
    xc.stepStride = bench::knob(opt, "HIPPO_PAR_STRIDE", 64, 64);
    xc.maxCrashes = 1u << 20;

    // Untimed warm-up so the first timed run doesn't absorb the
    // one-time allocator/page-fault costs.
    {
        auto warm = xc;
        warm.maxCrashes = 16;
        warm.jobs = 1;
        pmcheck::exploreCrashes(m.get(), warm);
    }

    unsigned hw = support::hardwareConcurrency();
    std::vector<unsigned> jobList = {1, 2, 4};
    // In smoke mode the jobs list stays fixed so the exploration
    // counters don't depend on the host's hardware-thread count.
    if (!opt.smoke &&
        std::find(jobList.begin(), jobList.end(), hw) ==
            jobList.end())
        jobList.push_back(hw);

    bool identical = true;
    size_t crashPoints = 0;
    double worstRatio = 1e300;

    bench::Table table({"mode", "engine", "jobs", "crash points",
                        "steps executed", "vs legacy", "wall time",
                        "identical"});

    for (double evict : {0.0, 0.01}) {
        xc.evictChance = evict;
        const char *mode = evict == 0 ? "fork" : "op-log";

        // Legacy reference: every crash point re-executes the entry.
        xc.engine = pmcheck::ExploreEngine::Legacy;
        xc.jobs = 1;
        StepCensus before = counterBaseline();
        Stopwatch legacyWatch;
        pmcheck::ExplorationResult reference =
            pmcheck::exploreCrashes(m.get(), xc);
        double legacySeconds = legacyWatch.elapsedSeconds();
        StepCensus legacySteps = counterDelta(before);
        crashPoints = reference.outcomes.size();
        table.addRow({mode, "legacy", "1",
                      format("%zu", crashPoints),
                      format("%llu", (unsigned long long)
                                         legacySteps.executed()),
                      "1.00x", format("%.3fs", legacySeconds), "-"});

        xc.engine = pmcheck::ExploreEngine::Snapshot;
        for (unsigned jobs : jobList) {
            xc.jobs = jobs;
            before = counterBaseline();
            Stopwatch watch;
            auto res = pmcheck::exploreCrashes(m.get(), xc);
            double seconds = watch.elapsedSeconds();
            StepCensus steps = counterDelta(before);

            bool same = res == reference;
            identical &= same;
            double ratio = (double)legacySteps.executed() /
                           (double)steps.executed();
            worstRatio = std::min(worstRatio, ratio);
            table.addRow(
                {mode, "snapshot", format("%u%s", jobs,
                                          jobs == hw ? " (hw)" : ""),
                 format("%zu", res.outcomes.size()),
                 format("%llu",
                        (unsigned long long)steps.executed()),
                 format("%.2fx", ratio), format("%.3fs", seconds),
                 same ? "yes" : "NO"});
        }
    }
    table.print();

    std::printf("\n%zu crash points over the %llu-append workload; "
                "\"steps executed\" = profiling + entry replay + "
                "recovery VM steps, from the deterministic "
                "explorer.* counters. The snapshot engine runs the "
                "entry once per (mode, jobs) and only recovery per "
                "crash point.\n",
                crashPoints,
                (unsigned long long)xc.entryArgs[0]);

    auto &reg = support::MetricsRegistry::global();
    reg.counter("parallel.crash_points").inc(crashPoints);
    reg.counter("parallel.jobs_settings").inc(jobList.size());
    reg.counter("parallel.identical").inc(identical);
    // Floor of the per-combination step ratios, in hundredths
    // (e.g. 2537 = 25.37x), so regressions show up in --stats.
    reg.counter("parallel.steps_ratio_x100")
        .inc((uint64_t)(worstRatio * 100));
    bench::finishBench(opt, "bench_parallel_explore");

    if (!identical) {
        std::printf("FAIL: snapshot result diverged from the legacy "
                    "reference\n");
        return 1;
    }
    if (crashPoints < 64) {
        std::printf("FAIL: fewer than 64 crash points explored\n");
        return 1;
    }
    if (worstRatio < 5.0) {
        std::printf("FAIL: snapshot engine step reduction %.2fx < "
                    "5x\n",
                    worstRatio);
        return 1;
    }
    return 0;
}
