/**
 * @file
 * Regenerates Fig. 1 of the paper: the 26 studied PMDK durability
 * bugs grouped by kind and tracker-data availability, with average
 * commits to a passing build and days from open to close.
 *
 * Paper values: group means 17 commits / 33 days (max 66) for the
 * documented core-library bugs and 2 commits / 15 days (max 38) for
 * the documented API-misuse bugs; overall average 13 commits /
 * 28 days / max 66.
 */

#include <cstdio>

#include "apps/bugstudy.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner(
        "Fig. 1 — Study of 26 PMDK durability bugs and their fixes");

    bench::Table table({"Issue #s", "Avg Commits",
                        "Avg Days Open->Close", "Max Days", "Kind"});
    size_t rows = 0;
    for (const auto &row : apps::bugStudyTable()) {
        table.addRow(
            {row.issues,
             row.hasData ? format("%.0f", row.avgCommits) : "-",
             row.hasData ? format("%.0f", row.avgDays) : "-",
             row.hasData ? format("%d", row.maxDays) : "-",
             row.kind});
        rows++;
    }
    table.print();

    std::printf("\nPaper reference: 17 core-library/tool bugs, "
                "9 API-misuse bugs; documented fixes took 13 commits "
                "and 28 days on average (max 66 days).\n");

    support::MetricsRegistry::global()
        .counter("bugstudy.groups")
        .inc(rows);
    bench::finishBench(opt, "bench_fig1_bug_study");
    return 0;
}
