/**
 * @file
 * Interleaving-bounded exploration bench: explores the racekv
 * publisher/consumer app (one seeded cross-thread durability race,
 * one seeded single-thread missing-flush&fence) over the bounded
 * schedule set, under the torn-store fault model, at jobs = 1, 4, in
 * both interpreter engines, and sharded 1 and 4 ways.
 *
 * Gates (deterministic, counter-based — wall time is reported but
 * never enforced):
 *   - every jobs/engine combination must return a result
 *     byte-identical to the jobs=1 Tree reference, and both shard
 *     counts must agree on one merged digest (the acceptance gate of
 *     the thread-model milestone);
 *   - the buggy build must actually race: >= 1 cross-thread race
 *     observed and >= 1 race-forked crash image recovered;
 *   - the developer-fixed build must be completely quiet: zero
 *     races, zero unverified crash points, monotone durpoint
 *     recovery;
 *   - no schedule may degrade on either build at the default
 *     budgets.
 *
 * Knobs: HIPPO_INTERLEAVE_SLOTS (published slots, default 4),
 *        HIPPO_INTERLEAVE_SCHEDULES (plan budget, default 24).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/racekv.hh"
#include "bench_util.hh"
#include "pmcheck/crash_explorer.hh"
#include "shard/shard.hh"
#include "support/stopwatch.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner(
        "Interleaving-bounded exploration — racekv schedule space");

    apps::RaceKvBuild buggy;
    buggy.slots =
        (uint32_t)bench::knob(opt, "HIPPO_INTERLEAVE_SLOTS", 4, 4);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = apps::raceKvEntry;
    xc.recovery = apps::raceKvRecovery;
    xc.seed = 11;
    xc.faults.seed = 11;
    xc.faults.tornChance = 0.5;
    xc.schedules =
        bench::knob(opt, "HIPPO_INTERLEAVE_SCHEDULES", 24, 24);
    xc.preemptBound = 2;

    auto &reg = support::MetricsRegistry::global();

    // jobs=1 on the tree interpreter is the reference every other
    // combination must reproduce byte-identically.
    bool identical = true;
    pmcheck::ExplorationResult reference;
    bench::Table table({"engine", "jobs", "schedules", "races",
                        "race crashes", "unverified", "wall time",
                        "identical"});
    bool first = true;
    for (auto engine : {vm::VmEngine::Tree, vm::VmEngine::Bytecode}) {
        for (unsigned jobs : {1u, 4u}) {
            auto m = apps::buildRaceKv(buggy);
            xc.vmEngine = engine;
            xc.jobs = jobs;
            Stopwatch watch;
            auto res = pmcheck::exploreCrashes(m.get(), xc);
            double seconds = watch.elapsedSeconds();
            bool same = first || res == reference;
            if (first) {
                reference = res;
                first = false;
            }
            identical &= same;
            table.addRow(
                {vm::vmEngineName(engine), format("%u", jobs),
                 format("%llu/%llu",
                        (unsigned long long)res.schedulesExecuted,
                        (unsigned long long)res.schedulesPlanned),
                 format("%llu", (unsigned long long)res.racesObserved),
                 format("%llu",
                        (unsigned long long)res.raceCrashCount()),
                 format("%llu",
                        (unsigned long long)res.unverifiedCount()),
                 format("%.3fs", seconds), same ? "yes" : "NO"});
        }
    }
    table.print();

    // Shard-count invariance of the merged digest.
    xc.vmEngine = vm::VmEngine::Auto;
    xc.jobs = 0;
    uint64_t merged_digest = 0;
    bool sharded_ok = true;
    for (unsigned shards : {1u, 4u}) {
        auto m = apps::buildRaceKv(buggy);
        auto merged = shard::exploreShards(m.get(), xc, shards);
        sharded_ok &= merged.consistent;
        if (shards == 1)
            merged_digest = merged.digest;
        else
            sharded_ok &= merged.digest == merged_digest;
        std::printf("shards=%u consistent=%s digest=%016llx\n",
                    shards, merged.consistent ? "yes" : "NO",
                    (unsigned long long)merged.digest);
    }

    // The developer-fixed build under the same schedule set.
    apps::RaceKvBuild fixed = buggy;
    fixed.flushSlots = true;
    fixed.flushCount = true;
    auto fm = apps::buildRaceKv(fixed);
    auto fixed_res = pmcheck::exploreCrashes(fm.get(), xc);
    std::printf("\nfixed build: schedules=%llu races=%llu "
                "unverified=%llu monotone=%s\n",
                (unsigned long long)fixed_res.schedulesExecuted,
                (unsigned long long)fixed_res.racesObserved,
                (unsigned long long)fixed_res.unverifiedCount(),
                fixed_res.durPointRecoveryNonDecreasing() ? "yes"
                                                          : "NO");

    reg.counter("interleave.identical")
        .inc(identical && sharded_ok);
    reg.counter("interleave.schedules")
        .inc(reference.schedulesExecuted);
    reg.counter("interleave.visible_ops")
        .inc(reference.visibleOpsInRun);
    reg.counter("interleave.races").inc(reference.racesObserved);
    reg.counter("interleave.race_crashes")
        .inc(reference.raceCrashCount());
    reg.counter("interleave.degraded")
        .inc(reference.schedulesDegraded +
             fixed_res.schedulesDegraded);
    reg.counter("interleave.fixed.races")
        .inc(fixed_res.racesObserved);
    reg.counter("interleave.fixed.unverified")
        .inc(fixed_res.unverifiedCount());
    bench::finishBench(opt, "bench_interleave");

    if (!identical || !sharded_ok) {
        std::printf("FAIL: interleaving exploration diverged across "
                    "jobs/engines/shards\n");
        return 1;
    }
    if (reference.racesObserved == 0 ||
        reference.raceCrashCount() == 0) {
        std::printf("FAIL: the seeded cross-thread race never "
                    "forked a crash image\n");
        return 1;
    }
    if (fixed_res.racesObserved != 0 ||
        fixed_res.unverifiedCount() != 0 ||
        !fixed_res.durPointRecoveryNonDecreasing()) {
        std::printf(
            "FAIL: the developer-fixed build is not quiet\n");
        return 1;
    }
    if (reference.schedulesDegraded != 0 ||
        fixed_res.schedulesDegraded != 0) {
        std::printf("FAIL: schedules degraded at default budgets\n");
        return 1;
    }
    return 0;
}
