/**
 * @file
 * Adversarial fault-injection bench: explores one pmlog workload
 * under the torn-store crash model (FaultPlan) with recovery running
 * behind the watchdog, at jobs = 1, 2, 4, in both replay engines.
 *
 * Gates (deterministic, counter-based — wall time is reported but
 * never enforced):
 *   - every engine/jobs combination must return a result
 *     byte-identical to the legacy jobs=1 reference;
 *   - the adversary must actually bite: >= 1 torn line across the
 *     exploration (explorer.fault.torn_lines);
 *   - the degradation ladder must stay exceptional on this
 *     workload: unverified crash points <= 10% of the plan;
 *   - >= 48 crash points must be explored.
 *
 * Knobs: HIPPO_CHAOS_APPENDS (workload size, default 48),
 *        HIPPO_CHAOS_STRIDE (step-crash stride, default 97).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "pmcheck/crash_explorer.hh"
#include "support/stopwatch.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Chaos exploration — torn stores + watchdog");

    apps::PmlogConfig lc;
    lc.seedBugs = false;
    lc.capacity = 1u << 20;
    auto m = apps::buildPmlog(lc);

    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {bench::knob(opt, "HIPPO_CHAOS_APPENDS", 48, 48)};
    xc.recovery = "log_walk";
    xc.stepStride = bench::knob(opt, "HIPPO_CHAOS_STRIDE", 97, 97);
    xc.maxCrashes = 1u << 20;
    xc.faults.seed = 1;
    xc.faults.tornChance = 0.35;
    xc.faults.bitRotChance = 0.02;
    xc.stepBudget = 4'000'000;
    xc.heapBudget = 64u << 20;

    auto &reg = support::MetricsRegistry::global();

    // Legacy jobs=1 is the reference every combination must match.
    xc.engine = pmcheck::ExploreEngine::Legacy;
    xc.jobs = 1;
    Stopwatch refWatch;
    auto reference = pmcheck::exploreCrashes(m.get(), xc);
    double refSeconds = refWatch.elapsedSeconds();
    size_t crashPoints = reference.outcomes.size();
    uint64_t unverified = reference.unverifiedCount();

    bool identical = true;
    bench::Table table(
        {"engine", "jobs", "crash points", "unverified", "wall time",
         "identical"});
    table.addRow({"legacy", "1", format("%zu", crashPoints),
                  format("%llu", (unsigned long long)unverified),
                  format("%.3fs", refSeconds), "-"});

    xc.engine = pmcheck::ExploreEngine::Snapshot;
    for (unsigned jobs : {1u, 2u, 4u}) {
        xc.jobs = jobs;
        Stopwatch watch;
        auto res = pmcheck::exploreCrashes(m.get(), xc);
        double seconds = watch.elapsedSeconds();
        bool same = res == reference;
        identical &= same;
        table.addRow(
            {"snapshot", format("%u", jobs),
             format("%zu", res.outcomes.size()),
             format("%llu",
                    (unsigned long long)res.unverifiedCount()),
             format("%.3fs", seconds), same ? "yes" : "NO"});
    }
    table.print();

    uint64_t tornLines =
        reg.counter("explorer.fault.torn_lines").value();
    std::printf("\n%zu crash points, %llu torn lines across all "
                "runs; recovery ran sandboxed with a %llu-step "
                "budget. Unverified points are crashes the "
                "degradation ladder gave up verifying.\n",
                crashPoints, (unsigned long long)tornLines,
                (unsigned long long)xc.stepBudget);

    reg.counter("chaos.crash_points").inc(crashPoints);
    reg.counter("chaos.identical").inc(identical);
    reg.counter("chaos.unverified").inc(unverified);
    bench::finishBench(opt, "bench_chaos");

    if (!identical) {
        std::printf("FAIL: chaos exploration diverged across "
                    "engines/jobs\n");
        return 1;
    }
    if (crashPoints < 48) {
        std::printf("FAIL: fewer than 48 crash points explored\n");
        return 1;
    }
    if (tornLines == 0) {
        std::printf("FAIL: the torn-store adversary never tore a "
                    "line\n");
        return 1;
    }
    if (unverified * 10 > crashPoints) {
        std::printf("FAIL: %llu of %zu crash points unverified "
                    "(> 10%%)\n",
                    (unsigned long long)unverified, crashPoints);
        return 1;
    }
    return 0;
}
