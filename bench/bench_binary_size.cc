/**
 * @file
 * Regenerates the §6.4 code-bloat measurement: how much the
 * persistent subprogram transformation grows the program. The paper
 * reports +105 lines of LLVM IR on flush-free Redis (+0.013%),
 * yielding a binary only 0.05% (4 kB) larger than Redis-pmem, thanks
 * to clone reuse (one _PM clone per function, shared across fixes).
 */

#include <cstdio>

#include "apps/kv_driver.hh"
#include "bench_util.hh"
#include "ir/printer.hh"

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("§6.4 — Impact of fixes on program size");

    auto baseline = apps::buildPmkv({});
    size_t base_instrs = baseline->instrCount();
    size_t base_funcs = baseline->functions().size();
    size_t base_text = ir::moduleToString(*baseline).size();

    auto variants = apps::buildRedisVariants();

    auto report = [&](const char *name, ir::Module *m,
                      const core::FixSummary &s) {
        size_t instrs = m->instrCount();
        size_t text = ir::moduleToString(*m).size();
        std::printf("%-13s: %5zu IR instrs (+%zu, +%.3f%%), "
                    "%zu functions (+%zu clones+helpers), "
                    "text %.1f KB (+%.2f%%)\n",
                    name, instrs, instrs - base_instrs,
                    100.0 * (instrs - base_instrs) / base_instrs,
                    m->functions().size(),
                    m->functions().size() - base_funcs,
                    text / 1024.0,
                    100.0 * ((double)text - base_text) / base_text);
        if (s.functionsCloned) {
            std::printf("               clones: %u (reused across "
                        "%zu interprocedural fixes)\n",
                        s.functionsCloned,
                        s.interproceduralCount());
        }
    };

    std::printf("baseline (flush-free pmkv): %zu IR instrs, "
                "%zu functions\n\n",
                base_instrs, base_funcs);
    report("RedisH-full", variants.hippoFull.get(),
           variants.fullSummary);
    report("RedisH-intra", variants.hippoIntra.get(),
           variants.intraSummary);

    auto manual = apps::buildPmkv(
        [] {
            apps::PmkvConfig c;
            c.variant = apps::PmkvVariant::Manual;
            return c;
        }());
    std::printf("Redis-pm     : %5zu IR instrs (manual baseline)\n",
                manual->instrCount());

    size_t full_added =
        variants.hippoFull->instrCount() - base_instrs;
    std::printf("\nRedisH-full adds %zu IR instructions over the "
                "flush-free build.\n",
                full_added);
    std::printf("Paper reference: +105 LLVM IR lines (+0.013%%), "
                "binary +4 kB (+0.05%%) over Redis-pmem.\n");
    std::printf("Note: the *absolute* growth is the comparable "
                "number (tens of IR instructions, bounded by clone "
                "reuse); the percentage is not, because pmkv is ~3 "
                "orders of magnitude smaller than Redis.\n");

    auto &reg = support::MetricsRegistry::global();
    reg.counter("size.baseline_instrs").inc(base_instrs);
    reg.counter("size.full_instrs")
        .inc(variants.hippoFull->instrCount());
    reg.counter("size.intra_instrs")
        .inc(variants.hippoIntra->instrCount());
    reg.counter("size.manual_instrs").inc(manual->instrCount());
    reg.counter("size.full_added").inc(full_added);
    bench::finishBench(opt, "bench_binary_size");
    return 0;
}
