/**
 * @file
 * Cross-validates the static durability checker (dataflow over PMIR,
 * analysis/durability_checker.hh) against the dynamic bug finder on
 * every bundled application. The contract the gate enforces:
 *
 *   zero false negatives — every store site the dynamic detector
 *   reports on an executed path must appear in the static report;
 *
 *   bounded false positives — the static checker may over-report
 *   (may-alias flushes, unknown offsets), and this bench counts
 *   those sites so bench_check catches regressions in precision.
 *
 * Exit status is nonzero when any target shows a false negative.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/durability_checker.hh"
#include "apps/bugsuite.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "apps/pmkv.hh"
#include "apps/pmlog.hh"
#include "bench_util.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

namespace
{

using namespace hippo;

struct TargetResult
{
    std::string name;
    size_t dynamicSites = 0;
    size_t staticSites = 0;
    size_t matchedSites = 0;
    size_t falseNegatives = 0;
    size_t falsePositiveSites = 0;
    size_t staticCandidates = 0;
};

/** Unique store sites named by a dynamic report. */
std::set<std::string>
dynamicSites(const pmcheck::Report &r)
{
    std::set<std::string> sites;
    for (const auto &b : r.bugs)
        sites.insert(b.storeSiteKey());
    return sites;
}

/** Unique store sites named by one or more static reports. */
std::set<std::string>
staticSites(const std::vector<analysis::StaticReport> &reports)
{
    std::set<std::string> sites;
    for (const auto &st : reports)
        for (const auto &c : st.candidates)
            sites.insert(c.storeSiteKey());
    return sites;
}

TargetResult
compare(const std::string &name, const pmcheck::Report &dyn,
        const std::vector<analysis::StaticReport> &sts)
{
    TargetResult out;
    out.name = name;
    auto dsites = dynamicSites(dyn);
    auto ssites = staticSites(sts);
    out.dynamicSites = dsites.size();
    out.staticSites = ssites.size();
    for (const auto &st : sts)
        out.staticCandidates += st.candidates.size();
    for (const auto &s : dsites)
        out.matchedSites += ssites.count(s);
    out.falseNegatives = out.dynamicSites - out.matchedSites;
    for (const auto &s : ssites)
        out.falsePositiveSites += !dsites.count(s);
    return out;
}

/** Trace one entry under the bug finder. */
pmcheck::Report
traceOne(ir::Module *m, const std::string &entry,
         const std::vector<uint64_t> &args)
{
    pmem::PmPool pool(32u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m, &pool, vc);
    machine.run(entry, args);
    return pmcheck::analyze(machine.trace());
}

/** Static check from one entry. */
analysis::StaticReport
staticOne(const ir::Module &m, const std::string &entry)
{
    analysis::StaticCheckerConfig cfg;
    cfg.entry = entry;
    return analysis::checkDurability(m, cfg);
}

/** Single-entry whole-program target (pmlog/pclht/pmcache). */
TargetResult
runSimpleTarget(const std::string &name, ir::Module *m,
                const std::string &entry, uint64_t arg)
{
    return compare(name, traceOne(m, entry, {arg}),
                   {staticOne(*m, entry)});
}

/** pmkv: a short mixed workload over the per-request entry points;
 *  the static side takes the union over the entries used. */
TargetResult
runPmkvTarget(uint64_t keys)
{
    auto m = apps::buildPmkv({});
    pmem::PmPool pool(32u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("kv_init");
    for (uint64_t k = 1; k <= keys; k++)
        machine.run("kv_handle_set", {k, 32});
    machine.run("kv_handle_update", {1, 16});
    machine.run("kv_handle_rmw", {2, 16});
    machine.run("kv_handle_get", {1});
    machine.run("kv_handle_scan", {1, 4});
    auto dyn = pmcheck::analyze(machine.trace());

    std::vector<analysis::StaticReport> sts;
    for (const char *e :
         {"kv_init", "kv_handle_set", "kv_handle_update",
          "kv_handle_rmw", "kv_handle_get", "kv_handle_scan"})
        sts.push_back(staticOne(*m, e));
    return compare("pmkv (Redis-like)", dyn, sts);
}

/** The 11 PMDK issue reproductions, aggregated. */
TargetResult
runBugsuiteTarget()
{
    std::set<std::string> dsites, ssites;
    size_t cands = 0;
    for (const auto &c : apps::pmdkBugCases()) {
        auto m = c.build(false);
        auto dyn = traceOne(m.get(), c.entry, {});
        auto st = staticOne(*m, c.entry);
        cands += st.candidates.size();
        // Site keys are per-module; prefix with the case id so
        // same-named functions in different cases never collide.
        for (const auto &s : dynamicSites(dyn))
            dsites.insert(c.id + ":" + s);
        for (const auto &s : staticSites({st}))
            ssites.insert(c.id + ":" + s);
    }
    TargetResult out;
    out.name = "bugsuite (11 PMDK cases)";
    out.dynamicSites = dsites.size();
    out.staticSites = ssites.size();
    out.staticCandidates = cands;
    for (const auto &s : dsites)
        out.matchedSites += ssites.count(s);
    out.falseNegatives = out.dynamicSites - out.matchedSites;
    for (const auto &s : ssites)
        out.falsePositiveSites += !dsites.count(s);
    return out;
}

std::string
metricKey(const std::string &name)
{
    // "pmlog (append-only log)" -> "pmlog"
    return name.substr(0, name.find(' '));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Static durability checker — cross-validation "
                  "against the dynamic bug finder");

    uint64_t ops =
        (uint64_t)bench::knob(opt, "HIPPO_STATIC_OPS", 16, 8);

    std::vector<TargetResult> results;
    {
        auto m = apps::buildPmlog({});
        results.push_back(runSimpleTarget("pmlog (append-only log)",
                                          m.get(), "log_example",
                                          ops));
    }
    {
        auto m = apps::buildPclht({});
        results.push_back(runSimpleTarget("pclht (RECIPE hash)",
                                          m.get(), "clht_example",
                                          ops));
    }
    {
        auto m = apps::buildPmcache({});
        results.push_back(runSimpleTarget("pmcache (memcached-pm)",
                                          m.get(), "mc_example",
                                          ops));
    }
    results.push_back(runPmkvTarget(ops / 2 ? ops / 2 : 1));
    results.push_back(runBugsuiteTarget());

    bench::Table table({"Target", "Dyn sites", "Static sites",
                        "Matched", "False neg", "False pos"});
    size_t total_fn = 0, total_fp = 0;
    auto &reg = support::MetricsRegistry::global();
    for (const auto &r : results) {
        table.addRow({r.name, format("%zu", r.dynamicSites),
                      format("%zu", r.staticSites),
                      format("%zu", r.matchedSites),
                      format("%zu", r.falseNegatives),
                      format("%zu", r.falsePositiveSites)});
        total_fn += r.falseNegatives;
        total_fp += r.falsePositiveSites;

        std::string p = "static_check." + metricKey(r.name);
        reg.counter(p + ".dynamic_sites").inc(r.dynamicSites);
        reg.counter(p + ".static_sites").inc(r.staticSites);
        reg.counter(p + ".matched_sites").inc(r.matchedSites);
        reg.counter(p + ".false_negatives").inc(r.falseNegatives);
        reg.counter(p + ".false_positive_sites")
            .inc(r.falsePositiveSites);
        reg.counter(p + ".candidates").inc(r.staticCandidates);
    }
    table.print();
    reg.counter("static_check.targets").inc(results.size());
    reg.counter("static_check.false_negatives_total").inc(total_fn);
    reg.counter("static_check.false_positive_sites_total")
        .inc(total_fp);

    std::printf("\nContract: zero false negatives on executed "
                "paths; false positives are the price of "
                "soundness and are gated by bench_check.\n");

    bench::finishBench(opt, "bench_static_check");
    if (total_fn) {
        std::fprintf(stderr,
                     "bench_static_check: %zu false negative(s)\n",
                     total_fn);
        return 1;
    }
    return 0;
}
