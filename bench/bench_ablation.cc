/**
 * @file
 * End-to-end ablations of Hippocrates's three fix-computation phases
 * (§4.1 Step 3) on the flush-free KV store: what each phase buys in
 * fix count, inserted operations, code growth, and throughput.
 *
 *   full       = phase 1 + reduction + hoisting (the shipping tool)
 *   no-reduce  = phase 2 disabled
 *   intra-only = phase 3 disabled (the RedisH-intra configuration)
 *
 * Knobs: HIPPO_ABL_OPS (default 600), HIPPO_ABL_TRIALS (5).
 */

#include <cstdio>

#include "apps/kv_driver.hh"
#include "bench_util.hh"
#include "support/stats.hh"

namespace
{

using namespace hippo;

struct Config
{
    const char *name;
    bool reduction;
    bool hoisting;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner("Ablation — Hippocrates phases on flush-free pmkv");

    uint64_t ops = bench::knob(opt, "HIPPO_ABL_OPS", 600, 96);
    uint64_t trials = bench::knob(opt, "HIPPO_ABL_TRIALS", 5, 2);

    // One shared bug-finding run.
    auto traced = apps::buildPmkv({});
    pmem::PmPool tpool(64u << 20);
    vm::VmConfig tvc;
    tvc.traceEnabled = true;
    apps::KvDriver tracer(traced.get(), &tpool, tvc);
    tracer.init();
    tracer.run(ycsb::Workload::Load, 24, 24, 7);
    tracer.run(ycsb::Workload::A, 24, 24, 11);
    tracer.run(ycsb::Workload::F, 24, 8, 13);
    tracer.run(ycsb::Workload::E, 24, 4, 17);
    auto report = pmcheck::analyze(tracer.vm().trace());
    std::printf("bugs in flush-free pmkv: %zu\n\n",
                report.bugs.size());

    const Config configs[] = {
        {"full", true, true},
        {"no-reduce", false, true},
        {"intra-only", true, false},
    };

    bench::Table table({"config", "fixes", "inter", "flushes",
                        "fences", "clones", "IR growth",
                        "YCSB-A ops/s", "YCSB-C ops/s"});

    for (const Config &c : configs) {
        auto m = apps::buildPmkv({});
        size_t before = m->instrCount();
        core::FixerConfig fc;
        fc.enableReduction = c.reduction;
        fc.enableHoisting = c.hoisting;
        core::Fixer fixer(m.get(), fc);
        auto summary = fixer.fix(report, tracer.vm().trace(),
                                 &tracer.vm().dynPointsTo());

        SampleStats a_stats, c_stats;
        for (uint64_t t = 0; t < trials; t++) {
            for (auto *stats : {&a_stats, &c_stats}) {
                ycsb::Workload w = stats == &a_stats
                                       ? ycsb::Workload::A
                                       : ycsb::Workload::C;
                pmem::PmPool pool(32u << 20);
                apps::KvDriver driver(m.get(), &pool);
                driver.init();
                driver.run(ycsb::Workload::Load, ops, ops,
                           100 + t);
                stats->add(
                    driver.run(w, ops, ops, 200 + t).throughput());
            }
        }

        table.addRow(
            {c.name, format("%zu", summary.fixes.size()),
             format("%zu", summary.interproceduralCount()),
             format("%u", summary.flushesInserted),
             format("%u", summary.fencesInserted),
             format("%u", summary.functionsCloned),
             format("+%zu", m->instrCount() - before),
             format("%.0f", a_stats.mean()),
             format("%.0f", c_stats.mean())});

        auto &reg = support::MetricsRegistry::global();
        std::string p = std::string("ablation.") + c.name;
        summary.exportMetrics(reg, p + ".fixer");
        reg.doubleSum(p + ".ycsb_a_mean").add(a_stats.mean());
        reg.doubleSum(p + ".ycsb_c_mean").add(c_stats.mean());
    }
    table.print();

    std::printf(
        "\nReading: hoisting is the performance phase (intra-only "
        "collapses read throughput by poisoning the shared copy "
        "loop); reduction is the fix-count phase (disabling it "
        "plans per-bug instead of per-site, with the same final "
        "binary thanks to apply-time dedup).\n");
    bench::finishBench(opt, "bench_ablation");
    return 0;
}
