/**
 * @file
 * Regenerates Fig. 5: Hippocrates's offline overhead per target —
 * target size, wall-clock time of the repair, and peak memory.
 *
 * Paper values (on the authors' 203-KLOC targets): at most ~5 min
 * and <1 GB; the largest target (Redis) dominates. Our targets are
 * PMIR programs, so size is reported as functions / IR instructions
 * alongside the wall time and memory of running the full pipeline.
 */

#include <cstdio>

#include "apps/bugsuite.hh"
#include "apps/kv_driver.hh"
#include "apps/pclht.hh"
#include "apps/pmcache.hh"
#include "bench_util.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"

namespace
{

using namespace hippo;

struct Overhead
{
    std::string target;
    size_t functions = 0;
    size_t instrs = 0;
    size_t traceEvents = 0;
    double seconds = 0;
    uint64_t peakRss = 0;
};

Overhead
measure(const std::string &name, ir::Module *m,
        const std::string &entry, std::vector<uint64_t> args)
{
    Overhead o;
    o.target = name;
    o.functions = m->functions().size();
    o.instrs = m->instrCount();

    pmem::PmPool pool(64u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m, &pool, vc);
    machine.run(entry, std::move(args));
    o.traceEvents = machine.trace().size();

    auto report = pmcheck::analyze(machine.trace());
    Stopwatch watch;
    core::Fixer fixer(m, {});
    fixer.fix(report, machine.trace(), &machine.dynPointsTo());
    o.seconds = watch.elapsedSeconds();
    o.peakRss = peakRssBytes();
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hippo;
    auto opt = bench::parseBenchOptions(argc, argv);
    bench::banner(
        "Fig. 5 — Offline overhead of running Hippocrates");

    std::vector<Overhead> rows;

    // PMDK unit tests: the 11 reproducers, accumulated. Each
    // reproducer runs its whole pipeline on its own worker; the
    // accumulated fix time stays the sum of per-case times, so the
    // figure is comparable across HIPPO_JOBS settings.
    {
        const auto &cases = apps::pmdkBugCases();
        std::vector<Overhead> ones(cases.size());
        unsigned jobs = (unsigned)bench::knob(
            opt, "HIPPO_JOBS", support::hardwareConcurrency(), 2);
        support::ThreadPool pool(
            std::min<size_t>(jobs, cases.size()));
        pool.parallelForEach(0, cases.size(), [&](uint64_t i) {
            auto m = cases[i].build(false);
            ones[i] =
                measure(cases[i].id, m.get(), cases[i].entry, {});
        });

        Overhead pmdk;
        pmdk.target = "PMDK (unit tests)";
        for (const Overhead &one : ones) {
            pmdk.functions += one.functions;
            pmdk.instrs += one.instrs;
            pmdk.traceEvents += one.traceEvents;
            pmdk.seconds += one.seconds;
            pmdk.peakRss = std::max(pmdk.peakRss, one.peakRss);
        }
        rows.push_back(pmdk);
    }
    {
        auto m = apps::buildPclht({});
        rows.push_back(measure("P-CLHT (RECIPE)", m.get(),
                               "clht_example", {64}));
    }
    {
        auto m = apps::buildPmcache({});
        rows.push_back(
            measure("memcached-pm", m.get(), "mc_example", {64}));
    }
    {
        // Redis: the flush-free pmkv repaired from a full coverage
        // trace, the biggest trace of the four targets.
        auto m = apps::buildPmkv({});
        pmem::PmPool pool(128u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        apps::KvDriver driver(m.get(), &pool, vc);
        driver.init();
        uint64_t n = bench::knob(opt, "HIPPO_FIG5_OPS", 400, 64);
        driver.run(ycsb::Workload::Load, n, n, 3);
        driver.run(ycsb::Workload::A, n, n, 5);

        Overhead o;
        o.target = "Redis-pmem (pmkv)";
        o.functions = m->functions().size();
        o.instrs = m->instrCount();
        o.traceEvents = driver.vm().trace().size();
        auto report = pmcheck::analyze(driver.vm().trace());
        Stopwatch watch;
        core::Fixer fixer(m.get(), {});
        fixer.fix(report, driver.vm().trace(),
                  &driver.vm().dynPointsTo());
        o.seconds = watch.elapsedSeconds();
        o.peakRss = peakRssBytes();
        rows.push_back(o);
    }

    bench::Table table({"Target", "Functions", "IR instrs",
                        "Trace events", "Fix time", "Peak memory"});
    auto &reg = support::MetricsRegistry::global();
    for (const auto &o : rows) {
        table.addRow({o.target, format("%zu", o.functions),
                      format("%zu", o.instrs),
                      format("%zu", o.traceEvents),
                      format("%.3fs", o.seconds),
                      formatBytes(o.peakRss)});

        // Size and trace volume are deterministic; the fix time and
        // peak RSS land in informational (uncompared) instruments.
        std::string p = "fig5." + std::string(
            o.target.substr(0, o.target.find(' ')));
        reg.counter(p + ".functions").inc(o.functions);
        reg.counter(p + ".ir_instrs").inc(o.instrs);
        reg.counter(p + ".trace_events").inc(o.traceEvents);
        reg.timer(p + ".fix_ns")
            .addNanos((uint64_t)(o.seconds * 1e9));
        reg.gauge(p + ".peak_rss_bytes").setMax((double)o.peakRss);
    }
    table.print();

    std::printf("\nPaper reference (203 combined KLOC): 6s/345MB "
                "(PMDK), 2s/148MB (P-CLHT), 2.2s/147MB "
                "(memcached-pm), 5m09s/870MB (Redis) — low enough "
                "to integrate into a development workflow.\n");
    bench::finishBench(opt, "bench_fig5_overhead");
    return 0;
}
