/**
 * @file
 * Small shared helpers for the figure/table reproduction binaries:
 * fixed-width table printing and environment-variable knobs so the
 * long-running experiments can be scaled down or up.
 */

#ifndef HIPPO_BENCH_BENCH_UTIL_HH
#define HIPPO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/strings.hh"

namespace hippo::bench
{

/** A fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<size_t> widths(headers_.size(), 0);
        auto widen = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < row.size() && i < widths.size();
                 i++)
                widths[i] = std::max(widths[i], row[i].size());
        };
        widen(headers_);
        for (const auto &r : rows_)
            widen(r);

        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < widths.size(); i++) {
                std::printf("%-*s  ", (int)widths[i],
                            i < row.size() ? row[i].c_str() : "");
            }
            std::printf("\n");
        };
        print_row(headers_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Integer knob from the environment with a default. */
inline uint64_t
envKnob(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    uint64_t out;
    if (!hippo::parseUint(v, out))
        return def;
    return out;
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace hippo::bench

#endif // HIPPO_BENCH_BENCH_UTIL_HH
