/**
 * @file
 * Small shared helpers for the figure/table reproduction binaries:
 * fixed-width table printing, environment-variable knobs so the
 * long-running experiments can be scaled down or up, and the shared
 * --smoke/--stats harness behind the CI bench gate:
 *
 *   bench_xxx --smoke            # fixed reduced workload (ignores
 *                                # the env knobs, so counters are
 *                                # baseline-comparable)
 *   bench_xxx --stats out.json   # write the metrics registry as a
 *                                # stats document (FORMATS.md §5)
 *
 * The CI bench-smoke job runs every bench with both flags and diffs
 * the JSON against bench/baselines/ with tools/bench_check.
 */

#ifndef HIPPO_BENCH_BENCH_UTIL_HH
#define HIPPO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/metrics.hh"
#include "support/strings.hh"

namespace hippo::bench
{

/** A fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<size_t> widths(headers_.size(), 0);
        auto widen = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < row.size() && i < widths.size();
                 i++)
                widths[i] = std::max(widths[i], row[i].size());
        };
        widen(headers_);
        for (const auto &r : rows_)
            widen(r);

        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < widths.size(); i++) {
                std::printf("%-*s  ", (int)widths[i],
                            i < row.size() ? row[i].c_str() : "");
            }
            std::printf("\n");
        };
        print_row(headers_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Integer knob from the environment with a default. */
inline uint64_t
envKnob(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    uint64_t out;
    if (!hippo::parseUint(v, out))
        return def;
    return out;
}

/** Common bench command line (see the file comment). */
struct BenchOptions
{
    bool smoke = false;     ///< fixed reduced workload
    std::string statsPath;  ///< --stats: write metrics JSON here
};

/** Parse --smoke / --stats FILE; exits 2 on anything else. */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--stats" && i + 1 < argc) {
            opt.statsPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--stats OUT.json]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Workload knob: the fixed @p smoke_def in smoke mode (the env is
 * deliberately ignored so smoke counters are identical everywhere),
 * the environment override or @p def otherwise.
 */
inline uint64_t
knob(const BenchOptions &opt, const char *name, uint64_t def,
     uint64_t smoke_def)
{
    return opt.smoke ? smoke_def : envKnob(name, def);
}

/**
 * End-of-bench hook: write the global metrics registry to the
 * --stats path (tagged with the bench name and mode). Exits 2 when
 * the file cannot be written so CI fails loudly.
 */
inline void
finishBench(const BenchOptions &opt, const char *bench_name)
{
    if (opt.statsPath.empty())
        return;
    std::string error;
    if (!support::writeStatsJson(
            opt.statsPath, support::MetricsRegistry::global(),
            {{"bench", bench_name},
             {"mode", opt.smoke ? "smoke" : "full"}},
            &error)) {
        std::fprintf(stderr, "%s: %s\n", bench_name, error.c_str());
        std::exit(2);
    }
    std::printf("stats written to %s\n", opt.statsPath.c_str());
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace hippo::bench

#endif // HIPPO_BENCH_BENCH_UTIL_HH
