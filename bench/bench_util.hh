/**
 * @file
 * Small shared helpers for the figure/table reproduction binaries:
 * fixed-width table printing, environment-variable knobs so the
 * long-running experiments can be scaled down or up, and the shared
 * --smoke/--stats harness behind the CI bench gate:
 *
 *   bench_xxx --smoke            # fixed reduced workload (ignores
 *                                # the env knobs, so counters are
 *                                # baseline-comparable)
 *   bench_xxx --stats out.json   # write the metrics registry as a
 *                                # stats document (FORMATS.md §5)
 *
 * The CI bench-smoke job runs every bench with both flags and diffs
 * the JSON against bench/baselines/ with tools/bench_check.
 */

#ifndef HIPPO_BENCH_BENCH_UTIL_HH
#define HIPPO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/kv_driver.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"

namespace hippo::bench
{

/** A fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<size_t> widths(headers_.size(), 0);
        auto widen = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < row.size() && i < widths.size();
                 i++)
                widths[i] = std::max(widths[i], row[i].size());
        };
        widen(headers_);
        for (const auto &r : rows_)
            widen(r);

        auto print_row = [&](const std::vector<std::string> &row) {
            for (size_t i = 0; i < widths.size(); i++) {
                std::printf("%-*s  ", (int)widths[i],
                            i < row.size() ? row[i].c_str() : "");
            }
            std::printf("\n");
        };
        print_row(headers_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Integer knob from the environment with a default. */
inline uint64_t
envKnob(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    uint64_t out;
    if (!hippo::parseUint(v, out))
        return def;
    return out;
}

/** Common bench command line (see the file comment). */
struct BenchOptions
{
    bool smoke = false;     ///< fixed reduced workload
    std::string statsPath;  ///< --stats: write metrics JSON here
    unsigned shards = 0;    ///< --shards: sharded-leg override (0 = default)
    unsigned jobs = 0;      ///< --jobs: sharded-leg workers (0 = default)
};

/** Parse --smoke / --stats FILE / --shards N / --jobs N; exits 2 on
 *  anything else. */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions opt;
    auto parse_count = [&](const char *flag, const char *text,
                           unsigned &out) {
        uint64_t v;
        if (!hippo::parseUint(text, v) || !v || v > 1u << 16) {
            std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                         flag, text);
            std::exit(2);
        }
        out = (unsigned)v;
    };
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--stats" && i + 1 < argc) {
            opt.statsPath = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            parse_count("--shards", argv[++i], opt.shards);
        } else if (arg == "--jobs" && i + 1 < argc) {
            parse_count("--jobs", argv[++i], opt.jobs);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--stats OUT.json] "
                         "[--shards N] [--jobs N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Workload knob: the fixed @p smoke_def in smoke mode (the env is
 * deliberately ignored so smoke counters are identical everywhere),
 * the environment override or @p def otherwise.
 */
inline uint64_t
knob(const BenchOptions &opt, const char *name, uint64_t def,
     uint64_t smoke_def)
{
    return opt.smoke ? smoke_def : envKnob(name, def);
}

/**
 * End-of-bench hook: write the global metrics registry to the
 * --stats path (tagged with the bench name and mode). Exits 2 when
 * the file cannot be written so CI fails loudly.
 */
inline void
finishBench(const BenchOptions &opt, const char *bench_name)
{
    if (opt.statsPath.empty())
        return;
    std::string error;
    if (!support::writeStatsJson(
            opt.statsPath, support::MetricsRegistry::global(),
            {{"bench", bench_name},
             {"mode", opt.smoke ? "smoke" : "full"}},
            &error)) {
        std::fprintf(stderr, "%s: %s\n", bench_name, error.c_str());
        std::exit(2);
    }
    std::printf("stats written to %s\n", opt.statsPath.c_str());
}

/** Section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Counters from one pmkv YCSB hot-path run: fresh pool, @kv_init,
 * Load of @p records records, then @p ops operations of workload
 * @p w. This is THE shared workload construction for the KV legs of
 * bench_fig4_redis_ycsb, bench_flush_opt, bench_vm_dispatch, and
 * the sharded legs — one definition, so every bench measures the
 * same op stream for a given (records, ops, seeds).
 */
struct KvHotPathCounts
{
    apps::WorkloadResult load;     ///< load phase
    apps::WorkloadResult workload; ///< run phase
    double wallSeconds = 0;        ///< run phase only (informational)
    uint64_t flushes = 0;          ///< Vm census after both phases
    uint64_t fences = 0;
    uint64_t steps = 0;
    uint64_t treeOperandEvals = 0;
    uint64_t fastDispatches = 0;
    uint64_t fastSuper = 0;

    /** Simulated ops/sec over both phases. */
    double
    throughput() const
    {
        double secs = load.simSeconds + workload.simSeconds;
        return secs > 0 ? (load.ops + workload.ops) / secs : 0;
    }

    /** Dispatch work under @p engine (bench_vm_dispatch's metric:
     *  tree pays 3 touches/step + operand evals, fast one dispatch
     *  per bytecode instruction). */
    uint64_t
    dispatchUnits(vm::VmEngine engine) const
    {
        return engine == vm::VmEngine::Tree
                   ? 3 * steps + treeOperandEvals
                   : fastDispatches;
    }
};

inline KvHotPathCounts
runKvHotPath(ir::Module *m, ycsb::Workload w, uint64_t records,
             uint64_t ops, uint64_t load_seed, uint64_t run_seed,
             vm::VmEngine engine = vm::VmEngine::Auto,
             uint64_t pool_bytes = 64u << 20)
{
    pmem::PmPool pool(pool_bytes);
    vm::VmConfig vc;
    vc.engine = engine;
    apps::KvDriver driver(m, &pool, vc);
    driver.init();
    KvHotPathCounts out;
    out.load = driver.run(ycsb::Workload::Load, records, records,
                          load_seed);
    Stopwatch watch;
    out.workload = driver.run(w, records, ops, run_seed);
    out.wallSeconds = watch.elapsedSeconds();
    out.flushes = driver.vm().flushesExecuted();
    out.fences = driver.vm().fencesExecuted();
    out.steps = driver.vm().steps();
    out.treeOperandEvals = driver.vm().treeOperandEvals();
    out.fastDispatches = driver.vm().fastDispatches();
    out.fastSuper = driver.vm().fastSuperExecuted();
    return out;
}

} // namespace hippo::bench

#endif // HIPPO_BENCH_BENCH_UTIL_HH
