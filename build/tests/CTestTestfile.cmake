# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_pmkv[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_pmem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_pmcheck[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_fixer[1]_include.cmake")
include("/root/repo/build/tests/test_ycsb[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_pmlog[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_crash_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_bugstudy[1]_include.cmake")
