file(REMOVE_RECURSE
  "CMakeFiles/test_pmlog.dir/test_pmlog.cc.o"
  "CMakeFiles/test_pmlog.dir/test_pmlog.cc.o.d"
  "test_pmlog"
  "test_pmlog.pdb"
  "test_pmlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
