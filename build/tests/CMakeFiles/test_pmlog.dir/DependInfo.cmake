
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pmlog.cc" "tests/CMakeFiles/test_pmlog.dir/test_pmlog.cc.o" "gcc" "tests/CMakeFiles/test_pmlog.dir/test_pmlog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/hippo_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hippo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hippo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hippo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pmcheck/CMakeFiles/hippo_pmcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hippo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/hippo_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hippo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hippo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/hippo_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hippo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
