# Empty compiler generated dependencies file for test_pmlog.
# This may be replaced when dependencies are built.
