# Empty compiler generated dependencies file for test_fixer.
# This may be replaced when dependencies are built.
