file(REMOVE_RECURSE
  "CMakeFiles/test_fixer.dir/test_fixer.cc.o"
  "CMakeFiles/test_fixer.dir/test_fixer.cc.o.d"
  "test_fixer"
  "test_fixer.pdb"
  "test_fixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
