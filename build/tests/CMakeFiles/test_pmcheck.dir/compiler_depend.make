# Empty compiler generated dependencies file for test_pmcheck.
# This may be replaced when dependencies are built.
