file(REMOVE_RECURSE
  "CMakeFiles/test_pmcheck.dir/test_pmcheck.cc.o"
  "CMakeFiles/test_pmcheck.dir/test_pmcheck.cc.o.d"
  "test_pmcheck"
  "test_pmcheck.pdb"
  "test_pmcheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
