# Empty compiler generated dependencies file for test_crash_explorer.
# This may be replaced when dependencies are built.
