file(REMOVE_RECURSE
  "CMakeFiles/test_crash_explorer.dir/test_crash_explorer.cc.o"
  "CMakeFiles/test_crash_explorer.dir/test_crash_explorer.cc.o.d"
  "test_crash_explorer"
  "test_crash_explorer.pdb"
  "test_crash_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
