# Empty dependencies file for hippo_test_util.
# This may be replaced when dependencies are built.
