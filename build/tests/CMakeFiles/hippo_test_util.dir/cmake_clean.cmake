file(REMOVE_RECURSE
  "CMakeFiles/hippo_test_util.dir/test_util.cc.o"
  "CMakeFiles/hippo_test_util.dir/test_util.cc.o.d"
  "libhippo_test_util.a"
  "libhippo_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
