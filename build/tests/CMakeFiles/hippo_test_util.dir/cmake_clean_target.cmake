file(REMOVE_RECURSE
  "libhippo_test_util.a"
)
