# Empty dependencies file for test_pmkv.
# This may be replaced when dependencies are built.
