file(REMOVE_RECURSE
  "CMakeFiles/test_pmkv.dir/test_pmkv.cc.o"
  "CMakeFiles/test_pmkv.dir/test_pmkv.cc.o.d"
  "test_pmkv"
  "test_pmkv.pdb"
  "test_pmkv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
