# Empty compiler generated dependencies file for test_bugstudy.
# This may be replaced when dependencies are built.
