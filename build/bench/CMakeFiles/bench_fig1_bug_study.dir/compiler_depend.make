# Empty compiler generated dependencies file for bench_fig1_bug_study.
# This may be replaced when dependencies are built.
