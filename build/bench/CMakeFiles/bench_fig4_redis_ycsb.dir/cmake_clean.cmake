file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_redis_ycsb.dir/bench_fig4_redis_ycsb.cc.o"
  "CMakeFiles/bench_fig4_redis_ycsb.dir/bench_fig4_redis_ycsb.cc.o.d"
  "bench_fig4_redis_ycsb"
  "bench_fig4_redis_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_redis_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
