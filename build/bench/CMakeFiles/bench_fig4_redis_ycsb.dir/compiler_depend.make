# Empty compiler generated dependencies file for bench_fig4_redis_ycsb.
# This may be replaced when dependencies are built.
