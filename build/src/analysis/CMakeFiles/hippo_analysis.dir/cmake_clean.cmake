file(REMOVE_RECURSE
  "CMakeFiles/hippo_analysis.dir/alias_scorer.cc.o"
  "CMakeFiles/hippo_analysis.dir/alias_scorer.cc.o.d"
  "CMakeFiles/hippo_analysis.dir/call_graph.cc.o"
  "CMakeFiles/hippo_analysis.dir/call_graph.cc.o.d"
  "CMakeFiles/hippo_analysis.dir/points_to.cc.o"
  "CMakeFiles/hippo_analysis.dir/points_to.cc.o.d"
  "libhippo_analysis.a"
  "libhippo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
