# Empty dependencies file for hippo_analysis.
# This may be replaced when dependencies are built.
