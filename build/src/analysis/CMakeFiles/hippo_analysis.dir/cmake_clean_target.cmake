file(REMOVE_RECURSE
  "libhippo_analysis.a"
)
