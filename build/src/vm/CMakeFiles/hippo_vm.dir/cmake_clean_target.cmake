file(REMOVE_RECURSE
  "libhippo_vm.a"
)
