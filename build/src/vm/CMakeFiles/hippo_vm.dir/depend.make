# Empty dependencies file for hippo_vm.
# This may be replaced when dependencies are built.
