file(REMOVE_RECURSE
  "CMakeFiles/hippo_vm.dir/vm.cc.o"
  "CMakeFiles/hippo_vm.dir/vm.cc.o.d"
  "libhippo_vm.a"
  "libhippo_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
