file(REMOVE_RECURSE
  "libhippo_pmcheck.a"
)
