
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmcheck/crash_explorer.cc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/crash_explorer.cc.o" "gcc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/crash_explorer.cc.o.d"
  "/root/repo/src/pmcheck/detector.cc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/detector.cc.o" "gcc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/detector.cc.o.d"
  "/root/repo/src/pmcheck/pmtest_adapter.cc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/pmtest_adapter.cc.o" "gcc" "src/pmcheck/CMakeFiles/hippo_pmcheck.dir/pmtest_adapter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/hippo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/hippo_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hippo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hippo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hippo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
