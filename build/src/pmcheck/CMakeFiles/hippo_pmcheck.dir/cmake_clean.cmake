file(REMOVE_RECURSE
  "CMakeFiles/hippo_pmcheck.dir/crash_explorer.cc.o"
  "CMakeFiles/hippo_pmcheck.dir/crash_explorer.cc.o.d"
  "CMakeFiles/hippo_pmcheck.dir/detector.cc.o"
  "CMakeFiles/hippo_pmcheck.dir/detector.cc.o.d"
  "CMakeFiles/hippo_pmcheck.dir/pmtest_adapter.cc.o"
  "CMakeFiles/hippo_pmcheck.dir/pmtest_adapter.cc.o.d"
  "libhippo_pmcheck.a"
  "libhippo_pmcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_pmcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
