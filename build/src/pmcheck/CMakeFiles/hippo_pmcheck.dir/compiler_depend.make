# Empty compiler generated dependencies file for hippo_pmcheck.
# This may be replaced when dependencies are built.
