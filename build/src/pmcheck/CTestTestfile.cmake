# CMake generated Testfile for 
# Source directory: /root/repo/src/pmcheck
# Build directory: /root/repo/build/src/pmcheck
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
