# Empty compiler generated dependencies file for hippo_ir.
# This may be replaced when dependencies are built.
