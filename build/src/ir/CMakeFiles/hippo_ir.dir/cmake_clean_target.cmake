file(REMOVE_RECURSE
  "libhippo_ir.a"
)
