file(REMOVE_RECURSE
  "CMakeFiles/hippo_ir.dir/builder.cc.o"
  "CMakeFiles/hippo_ir.dir/builder.cc.o.d"
  "CMakeFiles/hippo_ir.dir/cloner.cc.o"
  "CMakeFiles/hippo_ir.dir/cloner.cc.o.d"
  "CMakeFiles/hippo_ir.dir/ir.cc.o"
  "CMakeFiles/hippo_ir.dir/ir.cc.o.d"
  "CMakeFiles/hippo_ir.dir/parser.cc.o"
  "CMakeFiles/hippo_ir.dir/parser.cc.o.d"
  "CMakeFiles/hippo_ir.dir/printer.cc.o"
  "CMakeFiles/hippo_ir.dir/printer.cc.o.d"
  "CMakeFiles/hippo_ir.dir/verifier.cc.o"
  "CMakeFiles/hippo_ir.dir/verifier.cc.o.d"
  "libhippo_ir.a"
  "libhippo_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
