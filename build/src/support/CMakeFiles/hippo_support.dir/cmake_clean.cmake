file(REMOVE_RECURSE
  "CMakeFiles/hippo_support.dir/logging.cc.o"
  "CMakeFiles/hippo_support.dir/logging.cc.o.d"
  "CMakeFiles/hippo_support.dir/random.cc.o"
  "CMakeFiles/hippo_support.dir/random.cc.o.d"
  "CMakeFiles/hippo_support.dir/stats.cc.o"
  "CMakeFiles/hippo_support.dir/stats.cc.o.d"
  "CMakeFiles/hippo_support.dir/stopwatch.cc.o"
  "CMakeFiles/hippo_support.dir/stopwatch.cc.o.d"
  "CMakeFiles/hippo_support.dir/strings.cc.o"
  "CMakeFiles/hippo_support.dir/strings.cc.o.d"
  "libhippo_support.a"
  "libhippo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
