file(REMOVE_RECURSE
  "libhippo_support.a"
)
