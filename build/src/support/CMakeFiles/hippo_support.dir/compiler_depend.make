# Empty compiler generated dependencies file for hippo_support.
# This may be replaced when dependencies are built.
