# Empty dependencies file for hippo_apps.
# This may be replaced when dependencies are built.
