file(REMOVE_RECURSE
  "CMakeFiles/hippo_apps.dir/bugstudy.cc.o"
  "CMakeFiles/hippo_apps.dir/bugstudy.cc.o.d"
  "CMakeFiles/hippo_apps.dir/bugsuite.cc.o"
  "CMakeFiles/hippo_apps.dir/bugsuite.cc.o.d"
  "CMakeFiles/hippo_apps.dir/kv_driver.cc.o"
  "CMakeFiles/hippo_apps.dir/kv_driver.cc.o.d"
  "CMakeFiles/hippo_apps.dir/pclht.cc.o"
  "CMakeFiles/hippo_apps.dir/pclht.cc.o.d"
  "CMakeFiles/hippo_apps.dir/pmcache.cc.o"
  "CMakeFiles/hippo_apps.dir/pmcache.cc.o.d"
  "CMakeFiles/hippo_apps.dir/pmkv.cc.o"
  "CMakeFiles/hippo_apps.dir/pmkv.cc.o.d"
  "CMakeFiles/hippo_apps.dir/pmlog.cc.o"
  "CMakeFiles/hippo_apps.dir/pmlog.cc.o.d"
  "libhippo_apps.a"
  "libhippo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
