file(REMOVE_RECURSE
  "libhippo_apps.a"
)
