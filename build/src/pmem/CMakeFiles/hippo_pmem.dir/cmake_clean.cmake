file(REMOVE_RECURSE
  "CMakeFiles/hippo_pmem.dir/pm_pool.cc.o"
  "CMakeFiles/hippo_pmem.dir/pm_pool.cc.o.d"
  "libhippo_pmem.a"
  "libhippo_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
