# Empty dependencies file for hippo_pmem.
# This may be replaced when dependencies are built.
