file(REMOVE_RECURSE
  "libhippo_pmem.a"
)
