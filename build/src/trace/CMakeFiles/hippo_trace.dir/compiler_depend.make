# Empty compiler generated dependencies file for hippo_trace.
# This may be replaced when dependencies are built.
