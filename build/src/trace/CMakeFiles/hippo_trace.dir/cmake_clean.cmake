file(REMOVE_RECURSE
  "CMakeFiles/hippo_trace.dir/trace.cc.o"
  "CMakeFiles/hippo_trace.dir/trace.cc.o.d"
  "libhippo_trace.a"
  "libhippo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
