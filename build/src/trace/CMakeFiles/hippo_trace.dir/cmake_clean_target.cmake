file(REMOVE_RECURSE
  "libhippo_trace.a"
)
