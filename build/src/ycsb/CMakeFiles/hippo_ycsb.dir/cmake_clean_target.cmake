file(REMOVE_RECURSE
  "libhippo_ycsb.a"
)
