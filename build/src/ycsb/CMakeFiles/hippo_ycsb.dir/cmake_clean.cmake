file(REMOVE_RECURSE
  "CMakeFiles/hippo_ycsb.dir/ycsb.cc.o"
  "CMakeFiles/hippo_ycsb.dir/ycsb.cc.o.d"
  "libhippo_ycsb.a"
  "libhippo_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
