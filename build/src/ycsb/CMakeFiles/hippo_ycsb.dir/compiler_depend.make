# Empty compiler generated dependencies file for hippo_ycsb.
# This may be replaced when dependencies are built.
