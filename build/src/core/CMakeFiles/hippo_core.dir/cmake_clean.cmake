file(REMOVE_RECURSE
  "CMakeFiles/hippo_core.dir/fixer.cc.o"
  "CMakeFiles/hippo_core.dir/fixer.cc.o.d"
  "CMakeFiles/hippo_core.dir/flush_cleaner.cc.o"
  "CMakeFiles/hippo_core.dir/flush_cleaner.cc.o.d"
  "CMakeFiles/hippo_core.dir/patch_writer.cc.o"
  "CMakeFiles/hippo_core.dir/patch_writer.cc.o.d"
  "libhippo_core.a"
  "libhippo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
