file(REMOVE_RECURSE
  "libhippo_core.a"
)
