# Empty compiler generated dependencies file for hippo_core.
# This may be replaced when dependencies are built.
