file(REMOVE_RECURSE
  "CMakeFiles/hippoc.dir/hippoc.cc.o"
  "CMakeFiles/hippoc.dir/hippoc.cc.o.d"
  "hippoc"
  "hippoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hippoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
