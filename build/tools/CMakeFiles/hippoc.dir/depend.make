# Empty dependencies file for hippoc.
# This may be replaced when dependencies are built.
