file(REMOVE_RECURSE
  "CMakeFiles/explore_crashes.dir/explore_crashes.cpp.o"
  "CMakeFiles/explore_crashes.dir/explore_crashes.cpp.o.d"
  "explore_crashes"
  "explore_crashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_crashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
