# Empty dependencies file for explore_crashes.
# This may be replaced when dependencies are built.
