# Empty dependencies file for fix_pclht.
# This may be replaced when dependencies are built.
