file(REMOVE_RECURSE
  "CMakeFiles/fix_pclht.dir/fix_pclht.cpp.o"
  "CMakeFiles/fix_pclht.dir/fix_pclht.cpp.o.d"
  "fix_pclht"
  "fix_pclht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_pclht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
