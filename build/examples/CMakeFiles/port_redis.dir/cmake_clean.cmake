file(REMOVE_RECURSE
  "CMakeFiles/port_redis.dir/port_redis.cpp.o"
  "CMakeFiles/port_redis.dir/port_redis.cpp.o.d"
  "port_redis"
  "port_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
