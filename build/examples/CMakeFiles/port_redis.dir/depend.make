# Empty dependencies file for port_redis.
# This may be replaced when dependencies are built.
