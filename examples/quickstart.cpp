/**
 * @file
 * Quickstart: the complete Hippocrates pipeline on the paper's
 * running example (Listing 5/6) in ~80 lines of user code.
 *
 *  1. Build a PM program in PMIR (a buggy one: the store in @update
 *     is never flushed).
 *  2. Execute it under the VM with tracing enabled.
 *  3. Run the pmemcheck-like detector on the trace.
 *  4. Hand the report to Hippocrates, which repairs the module.
 *  5. Re-run the detector to confirm the program is now bug-free,
 *     and crash it to show the data actually survives.
 */

#include <cstdio>
#include <iostream>

#include "core/fixer.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

using namespace hippo;
using namespace hippo::ir;

/** Listing 5 of the paper: update/modify/foo with a missing flush. */
static std::unique_ptr<Module>
buildExample()
{
    auto m = std::make_unique<Module>("quickstart");
    IRBuilder b(m.get());

    Function *update = m->addFunction("update", Type::Void);
    Argument *addr = update->addParam(Type::Ptr, "addr");
    Argument *idx = update->addParam(Type::Int, "idx");
    Argument *val = update->addParam(Type::Int, "val");
    b.setInsertPoint(update->addBlock("entry"));
    b.setLoc("example.c", 2);
    b.createStore(val, b.createGep(addr, idx), 1);
    b.createRet();

    Function *modify = m->addFunction("modify", Type::Void);
    Argument *maddr = modify->addParam(Type::Ptr, "addr");
    b.setInsertPoint(modify->addBlock("entry"));
    b.setLoc("example.c", 5);
    b.createCall(update, {maddr, b.getInt(0), b.getInt(42)});
    b.createRet();

    Function *foo = m->addFunction("foo", Type::Void);
    BasicBlock *entry = foo->addBlock("entry");
    BasicBlock *loop = foo->addBlock("loop");
    BasicBlock *body = foo->addBlock("body");
    BasicBlock *done = foo->addBlock("done");
    b.setInsertPoint(entry);
    b.setLoc("example.c", 17);
    Instruction *vol = b.createAlloca(64);
    Instruction *pm = b.createPmMap("pool", 64);
    Instruction *iv = b.createAlloca(8);
    b.createStore(b.getInt(0), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(loop);
    Instruction *i = b.createLoad(iv, 8);
    b.createCondBr(b.createCmp(CmpPred::Ult, i, b.getInt(100)),
                   body, done);
    b.setInsertPoint(body);
    b.setLoc("example.c", 18);
    b.createCall(modify, {vol});
    b.createStore(b.createAdd(i, b.getInt(1)), iv, 8);
    b.createBr(loop);
    b.setInsertPoint(done);
    b.setLoc("example.c", 19);
    b.createCall(modify, {pm});
    b.setLoc("example.c", 22);
    b.createFence(FenceKind::Sfence);
    b.setLoc("example.c", 23);
    b.createDurPoint("crash");
    b.createRet();
    return m;
}

/** Run foo, crash at the durability point, report what survived. */
static uint8_t
crashAndRecover(Module *m)
{
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.crashAtDurPoint = 0;
    vm::Vm machine(m, &pool, vc);
    machine.run("foo");
    pool.crash(); // power failure: only persisted lines survive
    uint8_t byte = 0;
    pool.load(pool.findRegion("pool")->base, &byte, 1);
    return byte;
}

int
main()
{
    auto m = buildExample();

    // Step 1 of Fig. 2: run the bug finder.
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run("foo");
    auto report = pmcheck::analyze(machine.trace());

    std::printf("--- bug finder output ---\n%s\n",
                report.writeText().c_str());
    std::printf("data surviving a crash before the fix: %u "
                "(expected 0 -- lost!)\n\n",
                crashAndRecover(m.get()));

    // Steps 2-4: locate, compute, and apply the fixes.
    core::Fixer fixer(m.get());
    auto summary =
        fixer.fix(report, machine.trace(), &machine.dynPointsTo());
    std::printf("--- Hippocrates ---\n%s\n", summary.str().c_str());
    for (const auto &fix : summary.fixes)
        std::printf("  %s\n", fix.str().c_str());

    // The transformed subprogram, as in Listing 5 of the paper.
    std::printf("\n--- repaired persistent subprograms ---\n");
    printFunction(*m->findFunction("modify_PM"), std::cout);
    printFunction(*m->findFunction("update_PM"), std::cout);

    // Validate: re-run the bug finder; crash again.
    pmem::PmPool vpool(1 << 20);
    vm::Vm check(m.get(), &vpool, vc);
    check.run("foo");
    auto after = pmcheck::analyze(check.trace());
    std::printf("\nbugs after repair: %zu\n", after.bugs.size());
    std::printf("data surviving a crash after the fix: %u "
                "(expected 42 -- durable!)\n",
                crashAndRecover(m.get()));
    return after.clean() ? 0 : 1;
}
