/**
 * @file
 * Example: a tour of the PMIR toolchain as a library — parse a
 * module from text, verify it, execute it, serialize the trace and
 * bug report, round-trip them through their text formats (the
 * cross-process interface of the paper's Fig. 2 pipeline), and
 * repair from the parsed report.
 */

#include <cstdio>
#include <iostream>

#include "core/fixer.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

using namespace hippo;

static const char *programText = R"(
module "ir-tour"

; A tiny persistent counter with a missing flush on the bump.
func @bump(%slot: ptr) -> void {
entry:
    %v0 = load %slot, 8 !loc(counter.c:4)
    %v1 = add %v0, 1
    store %v1, %slot, 8 !loc(counter.c:5)
    fence sfence !loc(counter.c:6)
    durpoint "bumped" !loc(counter.c:7)
    ret
}

func @main() -> i64 {
entry:
    %ctr = pmmap "counter", 64 !loc(counter.c:12)
    call @bump(%ctr) !loc(counter.c:13)
    call @bump(%ctr) !loc(counter.c:14)
    call @bump(%ctr) !loc(counter.c:15)
    %v4 = load %ctr, 8
    print "count", %v4
    ret %v4
}
)";

int
main()
{
    // Parse and verify.
    std::string error;
    auto m = ir::parseModule(programText, &error);
    if (!m) {
        std::fprintf(stderr, "parse error: %s\n", error.c_str());
        return 1;
    }
    auto problems = ir::verifyModule(*m);
    std::printf("parsed %zu functions, %zu instructions, "
                "%zu verifier problems\n",
                m->functions().size(), m->instrCount(),
                problems.size());

    // Execute under the bug finder.
    pmem::PmPool pool(1 << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    auto run = machine.run("main");
    std::printf("program returned %llu in %.0f simulated ns\n",
                (unsigned long long)run.returnValue, run.simNanos);

    // The trace and report round-trip through text, exactly like
    // pmemcheck output crossing a process boundary.
    std::string trace_text = machine.trace().writeText();
    std::printf("\ntrace: %zu events, %zu bytes serialized; "
                "first lines:\n",
                machine.trace().size(), trace_text.size());
    std::printf("%s...\n",
                trace_text.substr(0, trace_text.find('\n', 200))
                    .c_str());

    trace::Trace reparsed;
    if (!trace::Trace::readText(trace_text, reparsed, &error)) {
        std::fprintf(stderr, "trace parse error: %s\n",
                     error.c_str());
        return 1;
    }

    auto report = pmcheck::analyze(reparsed);
    std::string report_text = report.writeText();
    std::printf("\n--- bug report (serialized) ---\n%s",
                report_text.c_str());

    pmcheck::Report from_text;
    if (!pmcheck::Report::readText(report_text, from_text, &error)) {
        std::fprintf(stderr, "report parse error: %s\n",
                     error.c_str());
        return 1;
    }

    // Repair from the *parsed* report + trace and print the result.
    core::Fixer fixer(m.get());
    auto summary = fixer.fix(from_text, reparsed);
    std::printf("\n%s\n\n--- repaired module ---\n",
                summary.str().c_str());
    ir::printModule(*m, std::cout);
    return 0;
}
