/**
 * @file
 * Example: automatically porting an application to persistent memory
 * (§6.3 / §7 of the paper). Starting from a Redis-like store whose
 * developer only wrote the *ordering points* (memory fences) and no
 * flushes at all, Hippocrates injects every required cache-line
 * flush — producing RedisH-full, which matches the hand-tuned
 * Redis-pm port on YCSB while the heuristic-less RedisH-intra build
 * shows what naive fix placement costs.
 */

#include <cstdio>

#include "apps/kv_driver.hh"

using namespace hippo;

static double
throughput(ir::Module *m, ycsb::Workload w)
{
    pmem::PmPool pool(32u << 20);
    apps::KvDriver driver(m, &pool);
    driver.init();
    driver.run(ycsb::Workload::Load, 500, 500, 7);
    return driver.run(w, 500, 500, 11).throughput();
}

int
main()
{
    std::printf("building the three Redis variants "
                "(trace -> detect -> repair twice)...\n");
    auto variants = apps::buildRedisVariants();

    std::printf("\nflush-free build had %zu durability bugs; "
                "all repaired and re-checked clean.\n",
                variants.flushFreeReport.bugs.size());
    std::printf("RedisH-full : %s\n",
                variants.fullSummary.str().c_str());
    std::printf("RedisH-intra: %s\n\n",
                variants.intraSummary.str().c_str());

    std::printf("%-10s %14s %14s %14s\n", "workload", "RedisH-intra",
                "Redis-pm", "RedisH-full");
    for (auto w : {ycsb::Workload::Load, ycsb::Workload::A,
                   ycsb::Workload::C}) {
        std::printf("%-10s %14.0f %14.0f %14.0f\n",
                    ycsb::workloadName(w),
                    throughput(variants.hippoIntra.get(), w),
                    throughput(variants.manual.get(), w),
                    throughput(variants.hippoFull.get(), w));
    }
    std::printf("\n(ops/sec of simulated time; RedisH-full rivals "
                "the manual port, RedisH-intra shows the cost of "
                "fixing memcpy-style helpers in-line.)\n");
    return 0;
}
