/**
 * @file
 * Example: systematic crash-state exploration of the pmlog
 * append-only log (the libpmemlog analog). For every durability
 * point — and every 101st instruction — the explorer simulates a
 * power failure and runs @log_walk recovery against the surviving
 * pool. On the buggy build nothing survives; after Hippocrates
 * repairs it, each crash recovers exactly the committed prefix and
 * torn appends are never visible.
 */

#include <cstdio>

#include "apps/pmlog.hh"
#include "core/fixer.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

using namespace hippo;

static void
explore(const char *label, ir::Module *m)
{
    pmcheck::CrashExplorerConfig xc;
    xc.entry = "log_example";
    xc.entryArgs = {8};
    xc.recovery = "log_walk";
    xc.stepStride = 101;

    auto res = pmcheck::exploreCrashes(m, xc);
    std::printf("%s: %zu crash points explored "
                "(%llu durpoints, %llu steps)\n",
                label, res.outcomes.size(),
                (unsigned long long)res.durPointsInRun,
                (unsigned long long)res.stepsInRun);
    std::printf("  entries recovered per durpoint crash:");
    for (const auto &o : res.outcomes) {
        if (!o.atStep)
            std::printf(" %llu", (unsigned long long)o.recovered);
    }
    std::printf("\n  across torn (step) crashes: min %llu, "
                "max %llu; clean run: %llu\n",
                (unsigned long long)res.minRecovered(),
                (unsigned long long)res.maxRecovered(),
                (unsigned long long)res.cleanRunRecovered);
}

int
main()
{
    auto buggy = apps::buildPmlog({});
    explore("buggy pmlog   ", buggy.get());

    // Repair and explore again.
    {
        pmem::PmPool pool(8u << 20);
        vm::VmConfig vc;
        vc.traceEnabled = true;
        vm::Vm machine(buggy.get(), &pool, vc);
        machine.run("log_example", {8});
        auto report = pmcheck::analyze(machine.trace());
        std::printf("\nHippocrates: repairing %zu bug(s)...\n\n",
                    report.bugs.size());
        core::Fixer fixer(buggy.get());
        fixer.fix(report, machine.trace(),
                  &machine.dynPointsTo());
    }
    explore("repaired pmlog", buggy.get());
    return 0;
}
