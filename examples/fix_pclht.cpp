/**
 * @file
 * Example: repairing a research prototype — the P-CLHT persistent
 * hash index from RECIPE (§6.1 found 2 previously undocumented bugs
 * in it). Demonstrates:
 *
 *  - finding the two seeded bugs (an unflushed table format and an
 *    unordered slot publish) with the trace-based detector;
 *  - Hippocrates repairing both;
 *  - a crash experiment proving the repair matters: before the fix a
 *    power failure at the put's durability point loses the inserted
 *    slot, after the fix it survives.
 */

#include <cstdio>

#include "apps/pclht.hh"
#include "core/fixer.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

using namespace hippo;

/** Insert 2 keys, crash during the 3rd insert, count what survived. */
static uint64_t
crashExperiment(ir::Module *m)
{
    pmem::PmPool pool(8u << 20);
    {
        vm::Vm machine(m, &pool, {});
        machine.run("clht_init");
        machine.run("clht_put", {1, 100});
        machine.run("clht_put", {2, 200});
    }
    {
        vm::VmConfig vc;
        vc.crashAtDurPoint = 0; // die at the put's durability point
        vm::Vm machine(m, &pool, vc);
        machine.run("clht_put", {3, 300});
    }
    pool.crash();
    vm::Vm recovery(m, &pool, {});
    return recovery.run("clht_recover").returnValue;
}

int
main()
{
    auto buggy = apps::buildPclht({});

    // Trace the RECIPE-style example driver under the bug finder.
    pmem::PmPool pool(8u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(buggy.get(), &pool, vc);
    machine.run("clht_example", {32});

    auto report = pmcheck::analyze(machine.trace());
    std::printf("bugs found in P-CLHT: %zu\n", report.bugs.size());
    for (const auto &b : report.bugs)
        std::printf("  %s\n", b.str().c_str());

    std::printf("\nslots recovered after a crash mid-put "
                "(3 committed): %llu  <- the third insert is lost\n",
                (unsigned long long)crashExperiment(buggy.get()));

    core::Fixer fixer(buggy.get());
    auto summary =
        fixer.fix(report, machine.trace(), &machine.dynPointsTo());
    std::printf("\n%s\n", summary.str().c_str());
    for (const auto &f : summary.fixes)
        std::printf("  %s\n", f.str().c_str());

    // Validate like §6.1: re-run the bug finder.
    pmem::PmPool vpool(8u << 20);
    vm::Vm check(buggy.get(), &vpool, vc);
    check.run("clht_example", {32});
    auto after = pmcheck::analyze(check.trace());
    std::printf("\nbugs after repair: %zu\n", after.bugs.size());
    std::printf("slots recovered after the same crash, repaired "
                "index: %llu  <- all three survive\n",
                (unsigned long long)crashExperiment(buggy.get()));
    return after.clean() ? 0 : 1;
}
