/**
 * @file
 * hippoc — the Hippocrates command-line driver.
 *
 * Runs the full Fig. 2 pipeline on a textual PMIR module:
 * execute the entry point under the bug finder, report durability
 * bugs, repair them, and write the repaired module back out.
 *
 *   hippoc prog.pmir                      # check + fix, print report
 *   hippoc prog.pmir -o fixed.pmir        # write the repaired module
 *   hippoc prog.pmir --check-only         # detector only (exit 1 on bugs)
 *   hippoc prog.pmir --no-hoist           # intraprocedural fixes only
 *   hippoc prog.pmir --trace-aa           # Trace-AA heuristic
 *   hippoc prog.pmir --patch-plan         # source-level fix plan
 *   hippoc prog.pmir --clean-flushes      # drop redundant flushes (§7)
 *   hippoc prog.pmir --entry start        # entry point (default: main)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/fixer.hh"
#include "core/flush_cleaner.hh"
#include "core/patch_writer.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "vm/vm.hh"

using namespace hippo;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <module.pmir> [--entry NAME] [--check-only]\n"
        "          [--no-hoist] [--no-reduce] [--trace-aa]\n"
        "          [--clean-flushes] [--patch-plan] [--stats]\n"
        "          [-o OUT.pmir]\n",
        argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "hippoc: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output, entry = "main";
    bool check_only = false, patch_plan = false;
    bool clean_flushes = false, show_stats = false;
    core::FixerConfig cfg;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--entry" && i + 1 < argc) {
            entry = argv[++i];
        } else if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--check-only") {
            check_only = true;
        } else if (arg == "--no-hoist") {
            cfg.enableHoisting = false;
        } else if (arg == "--no-reduce") {
            cfg.enableReduction = false;
        } else if (arg == "--trace-aa") {
            cfg.aaMode = analysis::AaMode::TraceAA;
        } else if (arg == "--clean-flushes") {
            clean_flushes = true;
        } else if (arg == "--patch-plan") {
            patch_plan = true;
        } else if (arg == "--stats") {
            show_stats = true;
        } else if (arg[0] == '-') {
            usage(argv[0]);
        } else if (input.empty()) {
            input = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (input.empty())
        usage(argv[0]);

    std::string error;
    auto m = ir::parseModule(readFile(input), &error);
    if (!m) {
        std::fprintf(stderr, "hippoc: parse error: %s\n",
                     error.c_str());
        return 2;
    }
    auto problems = ir::verifyModule(*m);
    if (!problems.empty()) {
        std::fprintf(stderr, "hippoc: invalid module: %s\n",
                     problems.front().c_str());
        return 2;
    }
    if (!m->findFunction(entry)) {
        std::fprintf(stderr, "hippoc: no entry function @%s\n",
                     entry.c_str());
        return 2;
    }

    // Step 1 (Fig. 2): run the bug finder.
    pmem::PmPool pool(64u << 20);
    vm::VmConfig vc;
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    machine.run(entry);
    auto report = pmcheck::analyze(machine.trace());

    if (show_stats)
        std::printf("%s\n", machine.statsString().c_str());
    std::printf("%s", report.writeText().c_str());
    if (check_only)
        return report.clean() ? 0 : 1;
    if (report.clean()) {
        std::printf("no durability bugs; nothing to fix\n");
    } else {
        // Steps 2-4: repair.
        core::Fixer fixer(m.get(), cfg);
        auto summary = fixer.fix(report, machine.trace(),
                                 &machine.dynPointsTo());
        std::printf("\n%s\n", summary.str().c_str());
        for (const auto &f : summary.fixes)
            std::printf("  %s\n", f.str().c_str());
        if (patch_plan)
            std::printf("\n%s",
                        core::renderPatchPlan(*m, summary).c_str());

        // Validate: the repaired module must re-check clean.
        pmem::PmPool vpool(64u << 20);
        vm::Vm check(m.get(), &vpool, vc);
        check.run(entry);
        auto after = pmcheck::analyze(check.trace());
        if (!after.clean()) {
            std::fprintf(stderr,
                         "hippoc: %zu bug(s) remain after repair\n",
                         after.bugs.size());
            return 1;
        }
        std::printf("\nre-check: clean\n");
    }

    if (clean_flushes) {
        auto stats = core::cleanRedundantFlushes(m.get());
        std::printf("flush cleaner: removed %zu redundant "
                    "flush(es), kept %zu\n",
                    stats.flushesRemoved, stats.flushesKept);
    }

    if (!output.empty()) {
        std::ofstream out(output);
        if (!out) {
            std::fprintf(stderr, "hippoc: cannot write %s\n",
                         output.c_str());
            return 2;
        }
        ir::printModule(*m, out);
        std::printf("wrote %s\n", output.c_str());
    }
    return 0;
}
