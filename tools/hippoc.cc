/**
 * @file
 * hippoc — the Hippocrates command-line driver.
 *
 * Runs the full Fig. 2 pipeline on a textual PMIR module:
 * execute the entry point under the bug finder, report durability
 * bugs, repair them, and write the repaired module back out.
 *
 *   hippoc prog.pmir                      # check + fix, print report
 *   hippoc prog.pmir -o fixed.pmir        # write the repaired module
 *   hippoc prog.pmir --check-only         # detector only (exit 1 on bugs)
 *   hippoc prog.pmir --static-check       # static dataflow checker only
 *                                         #   (no execution; exit 1 on
 *                                         #    candidates)
 *   hippoc prog.pmir --static-filter      # run the static checker as a
 *                                         #   pre-filter ahead of repair
 *   hippoc prog.pmir --no-hoist           # intraprocedural fixes only
 *   hippoc prog.pmir --trace-aa           # Trace-AA heuristic
 *   hippoc prog.pmir --patch-plan         # source-level fix plan
 *   hippoc prog.pmir --clean-flushes      # drop redundant flushes (§7)
 *   hippoc prog.pmir --entry start        # entry point (default: main)
 *   hippoc prog.pmir --stats out.json     # write pipeline metrics
 *   hippoc a.pmir b.pmir --jobs 8         # repair modules in parallel
 *   hippoc prog.pmir --chaos 1 --torn-chance 0.05
 *                                         # adversarial crash
 *                                         #   exploration: torn-store
 *                                         #   fault injection
 *   hippoc prog.pmir --step-budget 100000 --time-budget 2000
 *                                         # watchdog budgets per
 *                                         #   execution (sandboxed)
 *   hippoc prog.pmir --recovery rec       # recovery entry for --chaos
 *                                         #   (default: the entry)
 *   hippoc prog.pmir --chaos 1 --shards 4 # per-shard exploration:
 *                                         #   run the explorer once
 *                                         #   per shard, merge the
 *                                         #   recovery digests
 *   hippoc prog.pmir --engine bytecode    # interpreter engine for
 *                                         #   every execution
 *                                         #   (tree|bytecode|auto)
 *
 * With several input modules the full pipeline runs once per module,
 * one worker per program (--jobs N workers; default: one per
 * hardware thread), and reports print in argument order.
 *
 * Exit codes (documented in README "Exit codes"):
 *   0  success — no bugs, or all bugs repaired and re-check clean
 *   1  durability bugs found (--check-only/--static-check) or remain
 *   2  usage error: bad command line
 *   3  input error: unreadable/malformed/invalid module, bad entry
 *   4  resource error: pool exhausted, watchdog budget exceeded,
 *      output or stats file unwritable
 *   5  internal error: a caught invariant violation (tool bug)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/durability_checker.hh"
#include "core/fixer.hh"
#include "core/flush_cleaner.hh"
#include "core/flush_optimizer.hh"
#include "core/patch_writer.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "pmcheck/crash_explorer.hh"
#include "pmcheck/detector.hh"
#include "pmem/pm_pool.hh"
#include "shard/shard.hh"
#include "support/errors.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"
#include "vm/vm.hh"

using namespace hippo;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <module.pmir>... [--entry NAME] [--check-only]\n"
        "          [--static-check] [--static-filter]\n"
        "          [--no-hoist] [--no-reduce] [--trace-aa]\n"
        "          [--clean-flushes] [--optimize] [--patch-plan]\n"
        "          [--stats OUT.json] [--jobs N] [-o OUT.pmir]\n"
        "          [--chaos SEED] [--torn-chance P]\n"
        "          [--step-budget N] [--time-budget MS]\n"
        "          [--recovery NAME] [--engine tree|bytecode|auto]\n"
        "          [--shards N] [--schedules N] [--preempt-bound N]\n",
        argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        support::throwInputError("cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Everything one pipeline run needs, shared read-only by workers. */
struct Options
{
    std::string output, entry = "main";
    std::string statsPath; ///< --stats: write metrics JSON here
    bool checkOnly = false, patchPlan = false;
    bool staticCheck = false, staticFilter = false;
    bool cleanFlushes = false;
    bool optimize = false;  ///< --optimize: verified flush/fence opt
    bool chaos = false;     ///< --chaos: adversarial exploration
    unsigned shards = 1;    ///< --shards: per-shard exploration
    uint64_t schedules = 64;   ///< --schedules (threaded modules)
    uint32_t preemptBound = 2; ///< --preempt-bound (threaded modules)
    std::string recovery;   ///< --recovery (default: the entry)
    core::FixerConfig cfg;  ///< also carries faults + budgets
};

/** Watchdog VmConfig shared by the pipeline's own executions. */
vm::VmConfig
watchdogVmConfig(const Options &opt)
{
    vm::VmConfig vc;
    vc.engine = opt.cfg.vmEngine;
    if (opt.cfg.stepBudget || opt.cfg.heapBudget ||
        opt.cfg.timeBudgetMs) {
        vc.sandbox = true;
        vc.stepBudget = opt.cfg.stepBudget;
        vc.heapBudget = opt.cfg.heapBudget;
        vc.timeBudgetMs = opt.cfg.timeBudgetMs;
    }
    return vc;
}

/**
 * Map a non-Ok sandboxed run onto the exit-code taxonomy: budget
 * exhaustion is a resource error (4), a trap means the module itself
 * misbehaves — an input error (3).
 */
void
requireOk(const vm::RunResult &run, const std::string &input,
          const char *stage)
{
    if (run.ok())
        return;
    if (run.outcome == vm::ExecOutcome::Trap)
        support::throwInputError("%s: %s: %s", input.c_str(), stage,
                                 run.diag.c_str());
    support::throwResourceError("%s: %s: %s", input.c_str(), stage,
                                run.diag.c_str());
}

/** A compact digest callers can compare across --jobs settings
 *  (pmcheck::recoveryDigest — shared with the flush optimizer's
 *  differential harness). */
uint64_t
outcomeDigest(const pmcheck::ExplorationResult &res)
{
    return pmcheck::recoveryDigest(res);
}

/**
 * The full Fig. 2 pipeline on one module. Output is buffered into
 * @p out / @p err so concurrent pipelines don't interleave; the
 * caller prints the buffers in argument order.
 */
int
processModuleImpl(const std::string &input, const Options &opt,
                  std::string &out, std::string &err)
{
    std::string error;
    auto m = ir::parseModule(readFile(input), &error);
    if (!m)
        support::throwInputError("%s: parse error: %s", input.c_str(),
                                 error.c_str());
    auto problems = ir::verifyModule(*m);
    if (!problems.empty())
        support::throwInputError("%s: invalid module: %s",
                                 input.c_str(),
                                 problems.front().c_str());
    if (!m->findFunction(opt.entry))
        support::throwInputError("%s: no entry function @%s",
                                 input.c_str(), opt.entry.c_str());
    if (opt.chaos && !opt.recovery.empty() &&
        !m->findFunction(opt.recovery))
        support::throwInputError("%s: no recovery function @%s",
                                 input.c_str(), opt.recovery.c_str());

    auto &metrics = support::MetricsRegistry::global();

    // Static-only mode: no execution at all — report the dataflow
    // checker's candidates and stop (exit 1 when any exist).
    if (opt.staticCheck) {
        analysis::StaticCheckerConfig scfg;
        scfg.entry = opt.entry;
        auto sreport = analysis::checkDurability(*m, scfg);
        sreport.exportMetrics(metrics);
        metrics.counter("pipeline.modules").inc();
        out += sreport.writeText();
        return sreport.clean() ? 0 : 1;
    }

    // Pre-filter mode: run the static checker first so repair
    // verification can prioritize the flagged durability points.
    analysis::StaticReport sreport;
    core::FixerConfig fcfg = opt.cfg;
    if (opt.staticFilter) {
        analysis::StaticCheckerConfig scfg;
        scfg.entry = opt.entry;
        sreport = analysis::checkDurability(*m, scfg);
        sreport.exportMetrics(metrics);
        fcfg.staticReport = &sreport;
        out += format("static pre-filter: %zu candidate(s), "
                      "%zu priority durpoint label(s)\n",
                      sreport.candidates.size(),
                      sreport.durLabels().size());
    }

    // Step 1 (Fig. 2): run the bug finder — sandboxed under the
    // watchdog budgets, so a runaway module exits with a structured
    // diagnostic instead of spinning forever.
    pmem::PmPool pool(64u << 20);
    vm::VmConfig vc = watchdogVmConfig(opt);
    vc.traceEnabled = true;
    vm::Vm machine(m.get(), &pool, vc);
    requireOk(machine.run(opt.entry), input, "bug-finder run");
    auto report = pmcheck::analyze(machine.trace());
    machine.exportMetrics(metrics);
    report.exportMetrics(metrics);
    metrics.counter("pipeline.modules").inc();

    out += report.writeText();
    if (opt.checkOnly)
        return report.clean() ? 0 : 1;
    if (report.clean()) {
        out += "no durability bugs; nothing to fix\n";
    } else {
        // Steps 2-4: repair.
        core::Fixer fixer(m.get(), fcfg);
        auto summary = fixer.fix(report, machine.trace(),
                                 &machine.dynPointsTo());
        summary.exportMetrics(metrics);
        out += "\n" + summary.str() + "\n";
        for (const auto &f : summary.fixes)
            out += "  " + f.str() + "\n";
        if (opt.patchPlan)
            out += "\n" + core::renderPatchPlan(*m, summary);

        // Validate: the repaired module must re-check clean.
        pmem::PmPool vpool(64u << 20);
        vm::Vm check(m.get(), &vpool, vc);
        requireOk(check.run(opt.entry), input, "re-check run");
        auto after = pmcheck::analyze(check.trace());
        check.exportMetrics(metrics, "reverify.vm");
        after.exportMetrics(metrics, "reverify.pmcheck");
        metrics.counter("pipeline.reverify_passes").inc();
        metrics.counter("pipeline.reverify_clean").inc(after.clean());
        if (!after.clean()) {
            err += format("hippoc: %s: %zu bug(s) remain after "
                          "repair\n",
                          input.c_str(), after.bugs.size());
            return 1;
        }
        out += "\nre-check: clean\n";
    }

    if (opt.cleanFlushes) {
        auto stats = core::cleanRedundantFlushes(m.get());
        stats.exportMetrics(metrics);
        out += format("flush cleaner: removed %zu redundant "
                      "flush(es), kept %zu\n",
                      stats.flushesRemoved, stats.flushesKept);
    }

    // Verified flush/fence optimization (--optimize): run the global
    // optimizer, then prove the optimized module equivalent — same
    // pmcheck report, same static-checker candidates, byte-identical
    // crash-recovery digests — or revert it. Reverting is success:
    // the stage's contract is "do no harm", not "always shrink".
    if (opt.optimize) {
        core::FlushOptVerifyConfig oc;
        oc.entry = opt.entry;
        oc.recovery = opt.recovery;
        oc.jobs = opt.cfg.jobs;
        if (opt.chaos)
            oc.faults = opt.cfg.faults;
        oc.stepBudget = opt.cfg.stepBudget;
        oc.heapBudget = opt.cfg.heapBudget;
        oc.timeBudgetMs = opt.cfg.timeBudgetMs;
        oc.vmEngine = opt.cfg.vmEngine;
        auto outcome = core::optimizeAndVerify(m, oc);
        outcome.exportMetrics(metrics);
        if (outcome.reverted)
            out += format("flush optimizer: reverted (%s)\n",
                          outcome.failReason.c_str());
        else if (!outcome.changed && !outcome.failReason.empty())
            out += format("flush optimizer: skipped (%s)\n",
                          outcome.failReason.c_str());
        else
            out += format("flush optimizer: %s%s\n",
                          outcome.stats.str().c_str(),
                          outcome.changed ? ", verified" : "");
    }

    // Adversarial crash exploration (--chaos): torn-store fault
    // injection over the (possibly repaired) module, recovery
    // sandboxed under the watchdog budgets. The digest is a pure
    // function of the FaultPlan and the module, so it is identical
    // at every --jobs setting.
    if (opt.chaos) {
        pmcheck::CrashExplorerConfig cc;
        cc.entry = opt.entry;
        cc.recovery = opt.recovery.empty() ? opt.entry : opt.recovery;
        cc.jobs = opt.cfg.jobs;
        cc.seed = opt.cfg.faults.seed;
        cc.faults = opt.cfg.faults;
        cc.stepBudget = opt.cfg.stepBudget;
        cc.heapBudget = opt.cfg.heapBudget;
        cc.timeBudgetMs = opt.cfg.timeBudgetMs;
        cc.vmEngine = opt.cfg.vmEngine;
        cc.schedules = opt.schedules;
        cc.preemptBound = opt.preemptBound;
        if (opt.shards > 1) {
            // Per-shard exploration (src/shard): the explorer runs
            // once per shard against that shard's own fresh pool,
            // and the merged digest must agree across shard counts.
            auto merged =
                shard::exploreShards(m.get(), cc, opt.shards);
            metrics.counter("pipeline.chaos_runs").inc(opt.shards);
            out += format("chaos: seed=%llu shards=%u "
                          "consistent=%s unverified=%llu "
                          "merged-digest=%016llx\n",
                          (unsigned long long)opt.cfg.faults.seed,
                          opt.shards,
                          merged.consistent ? "yes" : "NO",
                          (unsigned long long)merged.unverified,
                          (unsigned long long)merged.digest);
        } else {
            auto res = pmcheck::exploreCrashes(m.get(), cc);
            metrics.counter("pipeline.chaos_runs").inc();
            out += format("chaos: seed=%llu torn-chance=%.3f "
                          "crash-points=%zu unverified=%llu "
                          "clean=%llu min=%llu max=%llu "
                          "digest=%016llx\n",
                          (unsigned long long)opt.cfg.faults.seed,
                          opt.cfg.faults.tornChance,
                          res.outcomes.size(),
                          (unsigned long long)res.unverifiedCount(),
                          (unsigned long long)res.cleanRunRecovered,
                          (unsigned long long)res.minRecovered(),
                          (unsigned long long)res.maxRecovered(),
                          (unsigned long long)outcomeDigest(res));
            if (res.schedulesExecuted)
                out += format(
                    "interleave: schedules=%llu/%llu degraded=%llu "
                    "races=%llu race-crashes=%llu visible-ops=%llu\n",
                    (unsigned long long)res.schedulesExecuted,
                    (unsigned long long)res.schedulesPlanned,
                    (unsigned long long)res.schedulesDegraded,
                    (unsigned long long)res.racesObserved,
                    (unsigned long long)res.raceCrashCount(),
                    (unsigned long long)res.visibleOpsInRun);
        }
    }

    if (!opt.output.empty()) {
        std::ofstream ofs(opt.output);
        if (!ofs)
            support::throwResourceError("cannot write %s",
                                        opt.output.c_str());
        ir::printModule(*m, ofs);
        out += format("wrote %s\n", opt.output.c_str());
    }
    return 0;
}

/**
 * Exception boundary per module: workers never unwind into the
 * ThreadPool. HippoError carries its own exit code; anything else
 * escaping the pipeline is a tool bug (internal error, exit 5).
 */
int
processModule(const std::string &input, const Options &opt,
              std::string &out, std::string &err)
{
    try {
        return processModuleImpl(input, opt, out, err);
    } catch (const support::HippoError &e) {
        err += format("hippoc: %s: %s\n",
                      support::errorKindName(e.kind()), e.what());
        return e.exitCode();
    } catch (const std::exception &e) {
        err += format("hippoc: %s: internal error: %s\n",
                      input.c_str(), e.what());
        return support::errorExitCode(support::ErrorKind::Internal);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    Options opt;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--entry" && i + 1 < argc) {
            opt.entry = argv[++i];
        } else if (arg == "-o" && i + 1 < argc) {
            opt.output = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.cfg.jobs = (unsigned)std::atoi(argv[++i]);
        } else if (arg == "--check-only") {
            opt.checkOnly = true;
        } else if (arg == "--static-check") {
            opt.staticCheck = true;
        } else if (arg == "--static-filter") {
            opt.staticFilter = true;
        } else if (arg == "--no-hoist") {
            opt.cfg.enableHoisting = false;
        } else if (arg == "--no-reduce") {
            opt.cfg.enableReduction = false;
        } else if (arg == "--trace-aa") {
            opt.cfg.aaMode = analysis::AaMode::TraceAA;
        } else if (arg == "--clean-flushes") {
            opt.cleanFlushes = true;
        } else if (arg == "--optimize") {
            opt.optimize = true;
        } else if (arg == "--patch-plan") {
            opt.patchPlan = true;
        } else if (arg == "--stats" && i + 1 < argc) {
            opt.statsPath = argv[++i];
        } else if (arg == "--chaos" && i + 1 < argc) {
            opt.chaos = true;
            opt.cfg.faults.seed =
                (uint64_t)std::strtoull(argv[++i], nullptr, 10);
            if (opt.cfg.faults.tornChance <= 0)
                opt.cfg.faults.tornChance = 0.5;
        } else if (arg == "--torn-chance" && i + 1 < argc) {
            opt.cfg.faults.tornChance = std::atof(argv[++i]);
        } else if (arg == "--step-budget" && i + 1 < argc) {
            opt.cfg.stepBudget =
                (uint64_t)std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--time-budget" && i + 1 < argc) {
            opt.cfg.timeBudgetMs =
                (uint64_t)std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--recovery" && i + 1 < argc) {
            opt.recovery = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            opt.shards =
                (unsigned)std::strtoul(argv[++i], nullptr, 10);
            if (!opt.shards ||
                (opt.shards & (opt.shards - 1)) != 0) {
                std::fprintf(stderr,
                             "hippoc: --shards must be a power of "
                             "two >= 1 (got '%s')\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--schedules" && i + 1 < argc) {
            opt.schedules =
                (uint64_t)std::strtoull(argv[++i], nullptr, 10);
            if (!opt.schedules) {
                std::fprintf(stderr,
                             "hippoc: --schedules must be >= 1 "
                             "(got '%s')\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--preempt-bound" && i + 1 < argc) {
            opt.preemptBound =
                (uint32_t)std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--engine" && i + 1 < argc) {
            if (!vm::parseVmEngine(argv[++i], opt.cfg.vmEngine)) {
                std::fprintf(stderr,
                             "hippoc: bad --engine '%s' (expected "
                             "tree|bytecode|auto)\n",
                             argv[i]);
                return 2;
            }
        } else if (arg[0] == '-') {
            usage(argv[0]);
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        usage(argv[0]);
    if (inputs.size() > 1 && !opt.output.empty()) {
        std::fprintf(stderr,
                     "hippoc: -o requires a single input module\n");
        return 2;
    }

    std::vector<std::string> outs(inputs.size()),
        errs(inputs.size());
    std::vector<int> codes(inputs.size(), 0);
    auto one = [&](uint64_t i) {
        codes[i] = processModule(inputs[i], opt, outs[i], errs[i]);
    };

    unsigned jobs = support::resolveJobs(opt.cfg.jobs);
    jobs = (unsigned)std::min<size_t>(jobs, inputs.size());
    if (jobs <= 1) {
        for (uint64_t i = 0; i < inputs.size(); i++)
            one(i);
    } else {
        support::ThreadPool pool(jobs);
        pool.parallelForEach(0, inputs.size(), one);
    }

    int rc = 0;
    for (size_t i = 0; i < inputs.size(); i++) {
        if (inputs.size() > 1)
            std::printf("==> %s <==\n", inputs[i].c_str());
        std::fputs(outs[i].c_str(), stdout);
        std::fputs(errs[i].c_str(), stderr);
        rc = std::max(rc, codes[i]);
    }

    if (!opt.statsPath.empty()) {
        std::string error;
        if (!support::writeStatsJson(
                opt.statsPath, support::MetricsRegistry::global(),
                {{"tool", "hippoc"},
                 {"modules", std::to_string(inputs.size())},
                 {"jobs", std::to_string(jobs)}},
                &error)) {
            // The pipeline ran; only the metrics file failed.
            std::fprintf(stderr, "hippoc: resource error: %s\n",
                         error.c_str());
            return support::errorExitCode(
                support::ErrorKind::Resource);
        }
    }
    return rc;
}
