#!/usr/bin/env python3
"""Documentation link & reference checker (the CI `docs` job).

Two checks over the repo's markdown:

1. every relative markdown link `[text](path)` resolves to a real
   file or directory (http(s)/mailto links and pure #anchors are
   skipped; an anchor suffix on a relative link is stripped first);

2. every `backtick-quoted` token that looks like a repo path
   (starts with src/, docs/, tests/, tools/, bench/, examples/ or
   .github/) names a file or directory that actually exists, so the
   prose never references code that has moved or been deleted.

Tokens containing globs, placeholders, or spaces are ignored; a
trailing colon-suffix such as `src/vm/vm.cc:120` is allowed and only
the path part is checked.

Exits nonzero listing every stale link/reference found.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Which documents to scan: top-level markdown plus docs/.
DOC_GLOBS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_RE = re.compile(r"`([^`\n]+)`")
PATH_PREFIXES = ("src/", "docs/", "tests/", "tools/", "bench/",
                 "examples/", ".github/")
# Characters that mark a token as a pattern/placeholder, not a path.
NON_PATH_CHARS = set("*?$<>{}()|= ")


def doc_files():
    out = [f for f in DOC_GLOBS
           if os.path.isfile(os.path.join(REPO, f))]
    docs_dir = os.path.join(REPO, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                out.append(os.path.join("docs", name))
    return out


def check_link(doc, target):
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return None
    path = target.split("#", 1)[0]
    if not path:
        return None
    base = os.path.dirname(os.path.join(REPO, doc))
    resolved = os.path.normpath(os.path.join(base, path))
    if not os.path.exists(resolved):
        return f"{doc}: broken link -> {target}"
    return None


def check_path_token(doc, token):
    if any(c in NON_PATH_CHARS for c in token):
        return None
    if not token.startswith(PATH_PREFIXES):
        return None
    path = token.split(":", 1)[0]  # allow `src/vm/vm.cc:120`
    full = os.path.join(REPO, path)
    # Built binaries (`bench/bench_micro`, `tools/bench_check`) are
    # fine when their source file exists.
    if not any(os.path.exists(full + ext) for ext in ("", ".cc")):
        return f"{doc}: stale path reference `{token}`"
    return None


def main():
    problems = []
    scanned = 0
    for doc in doc_files():
        scanned += 1
        with open(os.path.join(REPO, doc), encoding="utf-8") as f:
            text = f.read()
        for m in LINK_RE.finditer(text):
            p = check_link(doc, m.group(1))
            if p:
                problems.append(p)
        for m in BACKTICK_RE.finditer(text):
            p = check_path_token(doc, m.group(1))
            if p:
                problems.append(p)

    for p in problems:
        print(p, file=sys.stderr)
    print(f"check_docs: scanned {scanned} document(s), "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
