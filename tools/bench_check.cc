/**
 * @file
 * bench_check — the CI regression gate over bench --stats documents.
 *
 *   bench_check <baseline.json> <fresh.json> [--tolerance F]
 *               [--check-timers]
 *
 * Compares every *comparable* instrument (counters, sums,
 * histograms — the deterministic ones; see src/support/metrics.hh)
 * in the baseline against the fresh run and fails when the
 * symmetric relative deviation exceeds the tolerance (default 0.2,
 * the ">20% regression" gate) or when a baseline metric is missing
 * from the fresh run. Wall-clock timers and gauges are
 * host-dependent, so they are skipped unless --check-timers is
 * given (useful locally, too flaky for CI).
 *
 * Files with different schema_version values are never compared:
 * refresh the baseline instead (docs/FORMATS.md §5). Newly added
 * counters (e.g. the snapshot-engine family: explorer.snapshot.*,
 * explorer.replay.steps_saved, explorer.engine.*, pmpool
 * <prefix>.snapshot.*) are deterministic and ride the standard
 * counter path here — they start gating as soon as they appear in a
 * refreshed baseline; until then they are reported as "no baseline
 * yet".
 *
 * Exit codes: 0 pass, 1 regression, 2 usage/parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/metrics.hh"

using namespace hippo;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <fresh.json> "
                 "[--tolerance F] [--check-timers]\n",
                 argv0);
    std::exit(2);
}

json::Value
loadStats(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_check: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    json::Value doc;
    std::string error;
    if (!json::parse(ss.str(), doc, &error)) {
        std::fprintf(stderr, "bench_check: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    if (!doc.isObject() || !doc.find("metrics") ||
        !doc.find("schema_version")) {
        std::fprintf(stderr,
                     "bench_check: %s: not a stats document\n",
                     path.c_str());
        std::exit(2);
    }
    return doc;
}

/** One scalar to compare: "<path>" or "<path>.count" etc. */
struct Leaf
{
    std::string path;
    double value = 0;
};

/** True when @p node is a serialized instrument (has a "kind"). */
bool
isInstrument(const json::Value &node, std::string &kind)
{
    if (!node.isObject())
        return false;
    const json::Value *k = node.find("kind");
    if (!k || !k->isString())
        return false;
    kind = k->str();
    return true;
}

void
collectLeaves(const json::Value &node, const std::string &path,
              bool check_timers, std::vector<Leaf> &out)
{
    std::string kind;
    if (isInstrument(node, kind)) {
        auto num = [&](const char *member) {
            const json::Value *v = node.find(member);
            return v && v->isNumber() ? v->number() : 0.0;
        };
        if (kind == "counter" || kind == "sum") {
            out.push_back({path, num("value")});
        } else if (kind == "hist") {
            out.push_back({path + ".count", num("count")});
            out.push_back({path + ".sum", num("sum")});
            // Log-bucket percentiles (schema v4): deterministic
            // comparable counters, absent from older files.
            for (const char *p : {"p50", "p95", "p99"})
                if (node.find(p))
                    out.push_back({path + "." + p, num(p)});
        } else if (kind == "timer" && check_timers) {
            out.push_back({path + ".total_ns", num("total_ns")});
        }
        // gauges (and timers by default) are informational only
        return;
    }
    if (!node.isObject())
        return;
    for (const auto &[key, child] : node.object())
        collectLeaves(child, path.empty() ? key : path + "." + key,
                      check_timers, out);
}

/** Symmetric relative deviation: 0 when both are 0. */
double
deviation(double a, double b)
{
    double scale = std::max(std::fabs(a), std::fabs(b));
    return scale == 0 ? 0 : std::fabs(a - b) / scale;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    double tolerance = 0.2;
    bool check_timers = false;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else if (arg == "--check-timers") {
            check_timers = true;
        } else if (arg[0] == '-') {
            usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        usage(argv[0]);

    json::Value base = loadStats(files[0]);
    json::Value fresh = loadStats(files[1]);

    double base_ver = base.find("schema_version")->number();
    double fresh_ver = fresh.find("schema_version")->number();
    if (base_ver != fresh_ver) {
        std::fprintf(stderr,
                     "bench_check: schema_version mismatch (%g vs "
                     "%g); refresh the baseline\n",
                     base_ver, fresh_ver);
        return 2;
    }

    std::vector<Leaf> base_leaves, fresh_leaves;
    collectLeaves(*base.find("metrics"), "", check_timers,
                  base_leaves);
    collectLeaves(*fresh.find("metrics"), "", check_timers,
                  fresh_leaves);

    // Index both sides by path: stats documents now carry hundreds
    // of leaves, so the pairing is done via maps rather than a
    // quadratic scan.
    std::map<std::string, double> fresh_by_path, base_by_path;
    for (const Leaf &l : fresh_leaves)
        fresh_by_path[l.path] = l.value;
    for (const Leaf &l : base_leaves)
        base_by_path[l.path] = l.value;

    int failures = 0;
    for (const Leaf &b : base_leaves) {
        auto it = fresh_by_path.find(b.path);
        if (it == fresh_by_path.end()) {
            std::printf("FAIL %-50s missing from fresh run\n",
                        b.path.c_str());
            failures++;
            continue;
        }
        double dev = deviation(b.value, it->second);
        if (dev > tolerance) {
            std::printf("FAIL %-50s baseline %.6g, fresh %.6g "
                        "(%.1f%% > %.0f%%)\n",
                        b.path.c_str(), b.value, it->second,
                        100 * dev, 100 * tolerance);
            failures++;
        }
    }
    size_t extra = 0;
    for (const Leaf &f : fresh_leaves)
        extra += base_by_path.find(f.path) == base_by_path.end();
    if (extra) {
        std::printf("note: %zu metric(s) in the fresh run have no "
                    "baseline yet (not a failure; refresh the "
                    "baseline to gate them)\n",
                    extra);
    }

    std::printf("%s: %zu metric(s) compared, %d failure(s), "
                "tolerance %.0f%%\n",
                failures ? "FAIL" : "OK", base_leaves.size(),
                failures, 100 * tolerance);
    return failures ? 1 : 0;
}
